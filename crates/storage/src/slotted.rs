//! Slotted-page layout.
//!
//! Operates directly on raw page bytes. Layout:
//!
//! ```text
//! [0]      page type (see PageType)
//! [1]      unused
//! [2..4]   slot count          (u16 LE)
//! [4..6]   free-end offset     (u16 LE; data region grows down from here)
//! [6..]    slot array: per slot [offset u16][len u16]
//! [...end] record data, packed from the page end downward
//! ```
//!
//! A slot with `len == 0` is a tombstone. Records larger than a page are
//! stored as a stub here plus an overflow chain (see [`crate::heap`]).

use crate::page::PAGE_SIZE;

/// Discriminates page roles within a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PageType {
    /// Never initialized.
    Unknown = 0,
    /// Slotted data page.
    Data = 1,
    /// Overflow page of a long record.
    Overflow = 2,
    /// Packed fixed-size-record page (see [`crate::record`]).
    Record = 3,
    /// R*-tree node page.
    Index = 4,
}

impl PageType {
    /// Reads the page-type byte.
    pub fn of(page: &[u8; PAGE_SIZE]) -> PageType {
        match page[0] {
            1 => PageType::Data,
            2 => PageType::Overflow,
            3 => PageType::Record,
            4 => PageType::Index,
            _ => PageType::Unknown,
        }
    }

    /// Writes the page-type byte.
    pub fn set(self, page: &mut [u8; PAGE_SIZE]) {
        page[0] = self as u8;
    }
}

const HEADER: usize = 6;
const SLOT_ENTRY: usize = 4;

#[inline]
fn read_u16(page: &[u8; PAGE_SIZE], at: usize) -> u16 {
    u16::from_le_bytes([page[at], page[at + 1]])
}

#[inline]
fn write_u16(page: &mut [u8; PAGE_SIZE], at: usize, v: u16) {
    page[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

/// Initializes an empty slotted data page.
pub fn init(page: &mut [u8; PAGE_SIZE]) {
    PageType::Data.set(page);
    write_u16(page, 2, 0);
    write_u16(page, 4, PAGE_SIZE as u16);
}

/// Number of slots (including tombstones).
pub fn slot_count(page: &[u8; PAGE_SIZE]) -> u16 {
    read_u16(page, 2)
}

fn free_end(page: &[u8; PAGE_SIZE]) -> usize {
    read_u16(page, 4) as usize
}

/// Bytes available for one more record (its data plus a slot entry).
pub fn free_space(page: &[u8; PAGE_SIZE]) -> usize {
    let used_front = HEADER + SLOT_ENTRY * slot_count(page) as usize;
    free_end(page).saturating_sub(used_front)
}

/// Largest record insertable into a freshly initialized page.
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER - SLOT_ENTRY;

/// Inserts `data`, returning the slot index, or `None` if it does not fit.
pub fn insert(page: &mut [u8; PAGE_SIZE], data: &[u8]) -> Option<u16> {
    debug_assert_eq!(PageType::of(page), PageType::Data);
    if data.is_empty() || data.len() + SLOT_ENTRY > free_space(page) {
        return None;
    }
    let n = slot_count(page);
    let new_end = free_end(page) - data.len();
    page[new_end..new_end + data.len()].copy_from_slice(data);
    let slot_at = HEADER + SLOT_ENTRY * n as usize;
    write_u16(page, slot_at, new_end as u16);
    write_u16(page, slot_at + 2, data.len() as u16);
    write_u16(page, 2, n + 1);
    write_u16(page, 4, new_end as u16);
    Some(n)
}

/// Returns the record bytes in `slot`, or `None` for invalid/tombstoned
/// slots.
pub fn get(page: &[u8; PAGE_SIZE], slot: u16) -> Option<&[u8]> {
    if slot >= slot_count(page) {
        return None;
    }
    let slot_at = HEADER + SLOT_ENTRY * slot as usize;
    let off = read_u16(page, slot_at) as usize;
    let len = read_u16(page, slot_at + 2) as usize;
    if len == 0 {
        return None;
    }
    // Corrupt slot bytes must not panic the reader; treat an
    // out-of-bounds extent like an invalid slot.
    if off + len > PAGE_SIZE {
        return None;
    }
    Some(&page[off..off + len])
}

/// Tombstones a slot (data space is not reclaimed; heap files here are
/// append-mostly, matching the workloads).
pub fn delete(page: &mut [u8; PAGE_SIZE], slot: u16) -> bool {
    if slot >= slot_count(page) {
        return false;
    }
    let slot_at = HEADER + SLOT_ENTRY * slot as usize;
    if read_u16(page, slot_at + 2) == 0 {
        return false;
    }
    write_u16(page, slot_at + 2, 0);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::zeroed_page;

    #[test]
    fn insert_and_get() {
        let mut page = zeroed_page();
        init(&mut page);
        let s0 = insert(&mut page, b"hello").unwrap();
        let s1 = insert(&mut page, b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(get(&page, s0).unwrap(), b"hello");
        assert_eq!(get(&page, s1).unwrap(), b"world!");
        assert_eq!(get(&page, 2), None);
        assert_eq!(slot_count(&page), 2);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut page = zeroed_page();
        init(&mut page);
        let rec = vec![7u8; 1000];
        let mut inserted = 0;
        while insert(&mut page, &rec).is_some() {
            inserted += 1;
        }
        // 8 records of 1004 bytes each fit in 8186 usable bytes.
        assert_eq!(inserted, 8);
        assert!(free_space(&page) < 1004);
        // Smaller record still fits.
        assert!(insert(&mut page, &[1u8; 16]).is_some());
    }

    #[test]
    fn max_record_fits_empty_page() {
        let mut page = zeroed_page();
        init(&mut page);
        let rec = vec![1u8; MAX_RECORD];
        assert!(insert(&mut page, &rec).is_some());
        assert!(insert(&mut page, b"x").is_none());
        assert_eq!(get(&page, 0).unwrap().len(), MAX_RECORD);
    }

    #[test]
    fn delete_tombstones() {
        let mut page = zeroed_page();
        init(&mut page);
        let s = insert(&mut page, b"gone").unwrap();
        assert!(delete(&mut page, s));
        assert_eq!(get(&page, s), None);
        assert!(!delete(&mut page, s));
        // Slot count unchanged; later slots unaffected.
        let s2 = insert(&mut page, b"stay").unwrap();
        assert_eq!(get(&page, s2).unwrap(), b"stay");
    }

    #[test]
    fn page_type_roundtrip() {
        let mut page = zeroed_page();
        assert_eq!(PageType::of(&page), PageType::Unknown);
        PageType::Overflow.set(&mut page);
        assert_eq!(PageType::of(&page), PageType::Overflow);
        init(&mut page);
        assert_eq!(PageType::of(&page), PageType::Data);
    }

    #[test]
    fn rejects_empty_record() {
        let mut page = zeroed_page();
        init(&mut page);
        assert_eq!(insert(&mut page, b""), None);
    }
}
