//! Heap files: unordered collections of variable-length records addressed
//! by [`Oid`].
//!
//! The paper's inputs R and S are heap files ("we assume that the inputs
//! are a sequence of tuples"). Records larger than a page — the paper
//! notes a swiss-cheese polygon "might require thousands of points" — are
//! stored as a stub in the slotted page plus a chain of overflow pages.

use crate::buffer::BufferPool;
use crate::codec::u32_at;
use crate::error::{StorageError, StorageResult};
use crate::oid::Oid;
use crate::page::{FileId, PageId, PAGE_SIZE};
use crate::slotted::{self, PageType};
use std::cell::Cell;

/// Stub-record flag bytes.
const FLAG_INLINE: u8 = 0;
const FLAG_LONG: u8 = 1;

/// Overflow-page layout: [type u8][pad u8][chunk_len u16][next_page u32][data].
const OVF_HEADER: usize = 8;
const OVF_CAPACITY: usize = PAGE_SIZE - OVF_HEADER;
const NO_NEXT: u32 = u32::MAX;

/// Largest record stored inline (1 flag byte + payload).
const MAX_INLINE: usize = slotted::MAX_RECORD - 1;

/// A heap file handle. Cheap to copy around; all state lives on disk and
/// in the buffer pool except the last-data-page hint used for appends.
pub struct HeapFile {
    file: FileId,
    /// Page number of the slotted page appends currently target.
    last_data_page: Cell<Option<u32>>,
    /// Record count (maintained by this handle's inserts).
    count: Cell<u64>,
}

impl HeapFile {
    /// Creates a new, empty heap file on the pool's disk. Under a
    /// journaled pool the creation intent is durable on return; the
    /// loader commits the file once its data is loaded.
    pub fn create(pool: &BufferPool) -> StorageResult<Self> {
        // pbsm-lint: allow(resource-pairing, reason = "heap files are persistent relations owned by the catalog; the loader commits them and Catalog::drop_relation releases them")
        let file = pool.begin_intent()?;
        Ok(HeapFile {
            file,
            last_data_page: Cell::new(None),
            count: Cell::new(0),
        })
    }

    /// Re-opens a heap file by id (e.g. from catalog metadata). Appends
    /// will start a fresh page; `count` reflects only subsequent inserts.
    pub fn open(file: FileId) -> Self {
        HeapFile {
            file,
            last_data_page: Cell::new(None),
            count: Cell::new(0),
        }
    }

    /// Underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of records inserted through this handle.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Number of pages (data + overflow).
    pub fn num_pages(&self, pool: &BufferPool) -> u32 {
        pool.disk().num_pages(self.file)
    }

    /// Total size in bytes (pages × page size).
    pub fn bytes(&self, pool: &BufferPool) -> u64 {
        self.num_pages(pool) as u64 * PAGE_SIZE as u64
    }

    /// Appends a record, returning its OID.
    pub fn insert(&self, pool: &BufferPool, data: &[u8]) -> StorageResult<Oid> {
        let oid = if data.len() <= MAX_INLINE {
            let mut rec = Vec::with_capacity(data.len() + 1);
            rec.push(FLAG_INLINE);
            rec.extend_from_slice(data);
            self.insert_stub(pool, &rec)?
        } else {
            // Write the overflow chain first, then the stub pointing at it.
            let first = self.write_overflow_chain(pool, data)?;
            let mut rec = [0u8; 9];
            rec[0] = FLAG_LONG;
            rec[1..5].copy_from_slice(&(data.len() as u32).to_le_bytes());
            rec[5..9].copy_from_slice(&first.to_le_bytes());
            self.insert_stub(pool, &rec)?
        };
        self.count.set(self.count.get() + 1);
        Ok(oid)
    }

    fn insert_stub(&self, pool: &BufferPool, rec: &[u8]) -> StorageResult<Oid> {
        if let Some(page_no) = self.last_data_page.get() {
            let pid = PageId::new(self.file, page_no);
            let mut page = pool.get_mut(pid)?;
            if let Some(slot) = slotted::insert(&mut page, rec) {
                return Ok(Oid::new(self.file, page_no, slot));
            }
        }
        let (pid, mut page) = pool.new_page(self.file)?;
        slotted::init(&mut page);
        let slot = slotted::insert(&mut page, rec)
            .ok_or(StorageError::RecordTooLarge { size: rec.len() })?;
        self.last_data_page.set(Some(pid.page_no));
        Ok(Oid::new(self.file, pid.page_no, slot))
    }

    fn write_overflow_chain(&self, pool: &BufferPool, data: &[u8]) -> StorageResult<u32> {
        // Allocate all chain pages up front so each can point at the next.
        let nchunks = data.len().div_ceil(OVF_CAPACITY);
        let mut pids = Vec::with_capacity(nchunks);
        for _ in 0..nchunks {
            // Allocate without pinning yet; pages are written below.
            let pid = pool.disk_mut().allocate_page(self.file)?;
            pids.push(pid);
        }
        for (i, chunk) in data.chunks(OVF_CAPACITY).enumerate() {
            let mut page = pool.get_mut(pids[i])?;
            PageType::Overflow.set(&mut page);
            page[2..4].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            let next = if i + 1 < nchunks {
                pids[i + 1].page_no
            } else {
                NO_NEXT
            };
            page[4..8].copy_from_slice(&next.to_le_bytes());
            page[OVF_HEADER..OVF_HEADER + chunk.len()].copy_from_slice(chunk);
        }
        // The current data page keeps accepting stubs and small records;
        // overflow pages live after it in the file and scans skip them.
        Ok(pids[0].page_no)
    }

    /// Fetches the record at `oid` into `out` (cleared first).
    pub fn fetch(&self, pool: &BufferPool, oid: Oid, out: &mut Vec<u8>) -> StorageResult<()> {
        out.clear();
        if oid.file() != self.file {
            return Err(StorageError::InvalidOid(oid.raw()));
        }
        let (flag, total_len, first_ovf) = {
            let page = pool.get(oid.page_id())?;
            if PageType::of(&page) != PageType::Data {
                return Err(StorageError::InvalidOid(oid.raw()));
            }
            let rec = slotted::get(&page, oid.slot()).ok_or(StorageError::InvalidOid(oid.raw()))?;
            match rec[0] {
                FLAG_INLINE => {
                    out.extend_from_slice(&rec[1..]);
                    return Ok(());
                }
                FLAG_LONG => {
                    // A long-record stub is exactly flag + total + first
                    // page; anything shorter is damaged bytes, not a bug.
                    if rec.len() < 9 {
                        return Err(StorageError::Corrupt("truncated long-record stub"));
                    }
                    let total = u32_at(rec, 1);
                    let first = u32_at(rec, 5);
                    (FLAG_LONG, total as usize, first)
                }
                _ => return Err(StorageError::Corrupt("bad record flag")),
            }
        };
        debug_assert_eq!(flag, FLAG_LONG);
        out.reserve(total_len);
        let mut next = first_ovf;
        while next != NO_NEXT {
            let page = pool.get(PageId::new(self.file, next))?;
            if PageType::of(&page) != PageType::Overflow {
                return Err(StorageError::Corrupt("broken overflow chain"));
            }
            let len = u16::from_le_bytes([page[2], page[3]]) as usize;
            if OVF_HEADER + len > PAGE_SIZE {
                return Err(StorageError::Corrupt("overflow chunk length out of range"));
            }
            next = u32_at(&page[..], 4);
            out.extend_from_slice(&page[OVF_HEADER..OVF_HEADER + len]);
            // A cyclic or over-long chain (corrupt next pointers) would
            // otherwise loop forever accumulating bytes.
            if out.len() > total_len {
                return Err(StorageError::Corrupt("overflow chain length mismatch"));
            }
        }
        if out.len() != total_len {
            return Err(StorageError::Corrupt("overflow chain length mismatch"));
        }
        Ok(())
    }

    /// Sequential scan over all records. Pages are visited in physical
    /// order; overflow pages are skipped (their records are reached via
    /// their stubs).
    pub fn scan<'a>(&'a self, pool: &'a BufferPool) -> Scan<'a> {
        Scan {
            heap: self,
            pool,
            page_no: 0,
            slot: 0,
        }
    }
}

/// Iterator over `(Oid, record bytes)` of a heap file.
pub struct Scan<'a> {
    heap: &'a HeapFile,
    pool: &'a BufferPool,
    page_no: u32,
    slot: u16,
}

impl Iterator for Scan<'_> {
    type Item = StorageResult<(Oid, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        let npages = self.heap.num_pages(self.pool);
        loop {
            if self.page_no >= npages {
                return None;
            }
            let pid = PageId::new(self.heap.file, self.page_no);
            let page = match self.pool.get(pid) {
                Ok(p) => p,
                Err(e) => return Some(Err(e)),
            };
            if PageType::of(&page) != PageType::Data {
                self.page_no += 1;
                self.slot = 0;
                continue;
            }
            let nslots = slotted::slot_count(&page);
            while self.slot < nslots {
                let slot = self.slot;
                self.slot += 1;
                if slotted::get(&page, slot).is_some() {
                    let oid = Oid::new(self.heap.file, self.page_no, slot);
                    drop(page);
                    let mut buf = Vec::new();
                    return Some(
                        self.heap
                            .fetch(self.pool, oid, &mut buf)
                            .map(|()| (oid, buf)),
                    );
                }
            }
            self.page_no += 1;
            self.slot = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{DiskModel, SimDisk};

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(frames * PAGE_SIZE, SimDisk::new(DiskModel::default()))
    }

    #[test]
    fn insert_fetch_small() {
        let pool = pool(16);
        let heap = HeapFile::create(&pool).unwrap();
        let a = heap.insert(&pool, b"alpha").unwrap();
        let b = heap.insert(&pool, b"bravo").unwrap();
        let mut buf = Vec::new();
        heap.fetch(&pool, a, &mut buf).unwrap();
        assert_eq!(buf, b"alpha");
        heap.fetch(&pool, b, &mut buf).unwrap();
        assert_eq!(buf, b"bravo");
        assert_eq!(heap.count(), 2);
    }

    #[test]
    fn long_record_roundtrip() {
        let pool = pool(16);
        let heap = HeapFile::create(&pool).unwrap();
        // 3 overflow pages worth of data with a recognizable pattern.
        let data: Vec<u8> = (0..(OVF_CAPACITY * 2 + 1234))
            .map(|i| (i % 251) as u8)
            .collect();
        let oid = heap.insert(&pool, &data).unwrap();
        let mut buf = Vec::new();
        heap.fetch(&pool, oid, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn record_just_over_inline_threshold() {
        let pool = pool(16);
        let heap = HeapFile::create(&pool).unwrap();
        for size in [
            MAX_INLINE - 1,
            MAX_INLINE,
            MAX_INLINE + 1,
            PAGE_SIZE,
            PAGE_SIZE * 2,
        ] {
            let data = vec![0xAB; size];
            let oid = heap.insert(&pool, &data).unwrap();
            let mut buf = Vec::new();
            heap.fetch(&pool, oid, &mut buf).unwrap();
            assert_eq!(buf.len(), size, "size {size}");
        }
    }

    #[test]
    fn scan_returns_all_in_order() {
        let pool = pool(16);
        let heap = HeapFile::create(&pool).unwrap();
        let mut oids = Vec::new();
        for i in 0..500u32 {
            // Mix of small and page-spanning records.
            let len = if i % 97 == 0 {
                PAGE_SIZE + 100
            } else {
                40 + (i as usize % 100)
            };
            let data = vec![(i % 256) as u8; len];
            oids.push((heap.insert(&pool, &data).unwrap(), len, (i % 256) as u8));
        }
        let scanned: Vec<_> = heap.scan(&pool).map(|r| r.unwrap()).collect();
        assert_eq!(scanned.len(), 500);
        for ((oid, data), (want_oid, want_len, want_byte)) in scanned.iter().zip(&oids) {
            assert_eq!(oid, want_oid);
            assert_eq!(data.len(), *want_len);
            assert!(data.iter().all(|b| b == want_byte));
        }
        // Scan order equals OID order equals insertion order here.
        let mut sorted = oids.clone();
        sorted.sort_by_key(|(oid, _, _)| *oid);
        assert_eq!(sorted, oids);
    }

    #[test]
    fn fetch_wrong_file_rejected() {
        let pool = pool(16);
        let h1 = HeapFile::create(&pool).unwrap();
        let h2 = HeapFile::create(&pool).unwrap();
        let oid = h1.insert(&pool, b"x").unwrap();
        let mut buf = Vec::new();
        assert!(h2.fetch(&pool, oid, &mut buf).is_err());
    }

    #[test]
    fn survives_eviction_pressure() {
        // Pool much smaller than the data: every record round-trips disk.
        let pool = pool(8);
        let heap = HeapFile::create(&pool).unwrap();
        let mut oids = Vec::new();
        for i in 0..2000u32 {
            let data = i.to_le_bytes().repeat(20);
            oids.push((heap.insert(&pool, &data).unwrap(), data));
        }
        let mut buf = Vec::new();
        for (oid, want) in &oids {
            heap.fetch(&pool, *oid, &mut buf).unwrap();
            assert_eq!(&buf, want);
        }
        assert!(pool.disk_stats().reads > 0);
        assert!(pool.disk_stats().writes > 0);
    }
}
