//! Paged storage manager — the Paradise/SHORE substrate of the PBSM paper,
//! rebuilt as an in-process library over a **simulated disk**.
//!
//! The performance study in the paper runs inside Paradise, which uses the
//! SHORE storage manager on a Sun SPARCstation-10/51 with a Seagate
//! ST12400N disk and a buffer pool of 2/8/24 MB. This crate reproduces the
//! pieces of that stack the study exercises:
//!
//! * [`disk::SimDisk`] — an in-memory "disk" that counts reads, writes, and
//!   seeks, distinguishes sequential from random access, and converts the
//!   counts to modeled 1996 seconds via [`disk::DiskModel`].
//! * [`buffer::BufferPool`] — a pin/unpin buffer pool with clock
//!   replacement and SHORE's sorted write-behind ("forms a sorted list of
//!   all the dirty pages in the buffer pool, and tries to find pages that
//!   are consecutive on the disk", §4.6), toggleable for ablation.
//! * [`slotted`] + [`heap::HeapFile`] — slotted pages with overflow chains
//!   for long records, heap files addressed by [`oid::Oid`]s
//!   `(file, page, slot)` whose sort order equals physical disk order —
//!   the property the refinement step's OID-sort exploits.
//! * [`record::RecordFile`] — packed fixed-size-record temp files for
//!   key-pointer partitions and candidate OID pairs.
//! * [`tuple::SpatialTuple`] — the on-page tuple format with a spatial
//!   attribute, filler payload matching the paper's tuple widths, and an
//!   optional precomputed MER (\[BKSS94\]).
//! * [`catalog::Catalog`] — relation metadata including the *universe*
//!   rectangle PBSM reads "from the catalog information" (§3.1).
//! * [`extsort`] — an external merge sort bounded by work memory, used to
//!   sort candidate OID pairs in the refinement step.
//! * [`fault`] — seeded deterministic fault injection (transient I/O
//!   errors, torn pages, ENOSPC, crash points) plus the bounded
//!   [`fault::RetryPolicy`] the buffer pool applies; pages carry a sidecar
//!   checksum verified on every read.
//! * [`journal`] — an append-only intent journal of file-lifecycle and
//!   join-checkpoint records; [`Db::recover`] replays it after a simulated
//!   crash to reclaim orphan temp files and resume PBSM joins.
//!
//! Everything is deterministic; [`Db`] ties the pieces together. The
//! buffer pool and catalog are shared-state thread-safe (`Db` is `Sync`):
//! a serving layer hands [`Snapshot`] handles to N reader threads while
//! single-threaded runs keep byte-identical counter streams (see the
//! concurrency notes in [`buffer`]).

pub mod buffer;
pub mod catalog;
pub mod codec;
pub mod disk;
pub mod error;
pub mod extsort;
pub mod fault;
pub mod heap;
pub mod journal;
pub mod lockcheck;
pub mod oid;
pub mod page;
pub mod record;
pub mod slotted;
pub mod tuple;

mod db;

pub use buffer::ReplacementPolicy;
pub use db::{Db, DbConfig, Snapshot, TelemetryBaseline};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultConfig, FaultTally, RetryPolicy};
pub use journal::{JoinResume, Journal, JournalRecord, PairCkpt, RecoveredState, RunCkpt};
pub use oid::Oid;
pub use page::{FileId, PageId, PAGE_SIZE};
