//! Deterministic fault injection for the simulated disk.
//!
//! SHORE — the storage manager the paper's Paradise testbed runs on —
//! survives real devices failing mid-join; our [`SimDisk`] is a perfect
//! device, which left every error path downstream of it dead code. This
//! module gives the disk a *seeded* [`FaultSchedule`]: a pure function of
//! `(seed, operation index)` that decides, per page read / write /
//! allocation, whether to inject a fault. Two runs over the same I/O
//! sequence with the same seed inject byte-identical faults, so every
//! failure found by the chaos harness replays under a debugger.
//!
//! Four fault kinds are modeled (all rates are per-million-operations):
//!
//! * **Transient read** — the read fails with
//!   [`StorageError::TransientRead`] but the stored bytes are intact.
//!   A fault opens a *burst* of `1..=max_transient_burst` consecutive
//!   failures on that page, so a bounded retry usually absorbs it and
//!   occasionally (burst > budget) does not — exercising both the
//!   absorb and the give-up path.
//! * **Transient write** — same, for writes.
//! * **Torn write** — the write *appears to succeed* but the stored copy
//!   is only *conditionally* durable: if the process crashes before the
//!   next [`SimDisk::sync`], a 64-byte span of the page reverts to its
//!   pre-write contents (the mixed old/new sector image a real torn
//!   sector leaves behind). The page checksum kept by the disk still
//!   describes the intended bytes, so the first post-crash read of that
//!   page fails with [`StorageError::Corruption`]. A sync — the model's
//!   durability point — confirms the write and heals the pending tear.
//! * **ENOSPC** — page allocation fails with [`StorageError::DiskFull`],
//!   either probabilistically or deterministically once the disk exceeds
//!   `capacity_pages`.
//!
//! Beyond per-operation faults, a schedule can carry a deterministic
//! **crash point** (`crash_after_ops`): after that many disk operations,
//! the handle is poisoned — pending tears materialize, the in-flight
//! write is optionally torn too, and every later operation returns
//! [`StorageError::Crashed`] until the handle is passed to
//! [`Db::recover`].
//!
//! [`SimDisk::sync`]: crate::disk::SimDisk::sync
//! [`StorageError::Crashed`]: crate::error::StorageError::Crashed
//! [`Db::recover`]: crate::db::Db::recover
//!
//! [`SimDisk`]: crate::disk::SimDisk
//! [`StorageError::TransientRead`]: crate::error::StorageError::TransientRead
//! [`StorageError::Corruption`]: crate::error::StorageError::Corruption
//! [`StorageError::DiskFull`]: crate::error::StorageError::DiskFull

use crate::page::PageId;
use pbsm_obs as obs;
use std::collections::BTreeMap;

/// Rates and bounds for a [`FaultSchedule`]. All-zero (the default) means
/// no faults; `capacity_pages: None` means unbounded space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Probability a page read fails transiently, in parts per million.
    pub read_transient_ppm: u32,
    /// Probability a page write fails transiently, in parts per million.
    pub write_transient_ppm: u32,
    /// Probability a page write is torn (stored bytes corrupted, detected
    /// on the next read via checksum), in parts per million.
    pub torn_write_ppm: u32,
    /// Probability a page allocation reports ENOSPC, in parts per million.
    pub enospc_ppm: u32,
    /// Longest run of consecutive failures a single transient fault may
    /// produce (burst length is drawn uniformly from `1..=max`). 0 is
    /// treated as 1.
    pub max_transient_burst: u32,
    /// Hard device capacity in pages; allocations past it fail with
    /// `DiskFull` deterministically. Dropped files return their pages.
    pub capacity_pages: Option<u64>,
    /// Deterministic crash point: after this many further disk operations
    /// (reads + writes + allocations, counted from the moment the config
    /// is armed), the disk handle is poisoned and every subsequent
    /// operation fails with `StorageError::Crashed`.
    pub crash_after_ops: Option<u64>,
    /// When the crash point lands on a write, also tear that in-flight
    /// write: a 64-byte span of the page reverts to its pre-write bytes,
    /// as if the sector sequence was interrupted halfway.
    pub crash_tear_in_flight: bool,
}

impl FaultConfig {
    /// A schedule exercising every fault kind at `ppm` parts per million —
    /// the profile the chaos harness sweeps. Bursts run up to 6, longer
    /// than the default 4-attempt retry budget, so some transients are
    /// absorbed and some escape as `RetriesExhausted`, exercising both
    /// recovery outcomes.
    pub fn chaos(seed: u64, ppm: u32) -> Self {
        FaultConfig {
            seed,
            read_transient_ppm: ppm,
            write_transient_ppm: ppm,
            torn_write_ppm: ppm / 4,
            enospc_ppm: ppm / 4,
            max_transient_burst: 6,
            capacity_pages: None,
            crash_after_ops: None,
            crash_tear_in_flight: false,
        }
    }

    /// Transient-only faults (no torn writes, no ENOSPC) with bursts short
    /// enough that the pool's default retry budget always absorbs them —
    /// the profile under which a join must still match the oracle exactly.
    pub fn transient_only(seed: u64, ppm: u32) -> Self {
        FaultConfig {
            seed,
            read_transient_ppm: ppm,
            write_transient_ppm: ppm,
            torn_write_ppm: 0,
            enospc_ppm: 0,
            max_transient_burst: 2,
            capacity_pages: None,
            crash_after_ops: None,
            crash_tear_in_flight: false,
        }
    }

    /// A fault-free schedule that only crashes: the disk poisons itself
    /// after `ops` further operations, tearing the in-flight write. The
    /// profile the kill–restart–verify sweep arms between load and join.
    pub fn crash_at(seed: u64, ops: u64) -> Self {
        FaultConfig {
            seed,
            crash_after_ops: Some(ops),
            crash_tear_in_flight: true,
            ..FaultConfig::default()
        }
    }
}

/// The kind of operation a fault decision applies to. Also the key of the
/// injected-fault tally returned by [`FaultSchedule::injected`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    TransientRead,
    TransientWrite,
    TornWrite,
    Enospc,
}

/// Running totals of injected faults, one slot per [`FaultKind`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultTally {
    pub transient_reads: u64,
    pub transient_writes: u64,
    pub torn_writes: u64,
    pub enospc: u64,
}

impl FaultTally {
    /// Total injected faults of all kinds.
    pub fn total(&self) -> u64 {
        self.transient_reads + self.transient_writes + self.torn_writes + self.enospc
    }
}

/// What the schedule decided for one write operation.
pub(crate) enum WriteDecision {
    Ok,
    Transient,
    /// The write is torn: if a crash strikes before the next sync, the
    /// 64-byte span at this offset reverts to its pre-write contents.
    Torn {
        offset: usize,
    },
}

/// A seeded, deterministic fault plan. Owned by the disk; every I/O entry
/// point consults it (a `None` schedule short-circuits to the fault-free
/// path).
pub struct FaultSchedule {
    cfg: FaultConfig,
    /// splitmix64 state; advanced once per *decision*, never per retry, so
    /// retries do not desynchronize the stream between runs with
    /// different retry budgets.
    rng: u64,
    /// Open transient bursts: remaining failures per (page, is_write).
    /// Keyed on a `BTreeMap` so nothing about the schedule depends on
    /// hash iteration order (the project-wide determinism contract).
    pending: BTreeMap<(PageId, bool), u32>,
    tally: FaultTally,
}

impl FaultSchedule {
    pub fn new(cfg: FaultConfig) -> Self {
        FaultSchedule {
            cfg,
            // Seed 0 would make splitmix64's first outputs small; mix in a
            // constant so every seed (including 0) gets a full-entropy run.
            rng: cfg.seed ^ 0x9E37_79B9_7F4A_7C15,
            pending: BTreeMap::new(),
            tally: FaultTally::default(),
        }
    }

    /// The configuration this schedule was built from.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Injected-fault totals so far.
    pub fn injected(&self) -> FaultTally {
        self.tally
    }

    /// splitmix64: one 64-bit draw per decision point.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws a fault decision at `ppm` parts per million.
    fn fires(&mut self, ppm: u32) -> bool {
        if ppm == 0 {
            return false;
        }
        self.next_u64() % 1_000_000 < ppm as u64
    }

    /// Opens a transient burst on `(pid, is_write)`: the current operation
    /// fails, and the next `burst - 1` attempts on the same page fail too.
    fn open_burst(&mut self, pid: PageId, is_write: bool) {
        let max = self.cfg.max_transient_burst.max(1) as u64;
        let burst = 1 + (self.next_u64() % max) as u32;
        if burst > 1 {
            self.pending.insert((pid, is_write), burst - 1);
        }
    }

    /// Consumes one failure from an open burst, if any.
    fn drain_burst(&mut self, pid: PageId, is_write: bool) -> bool {
        if let Some(left) = self.pending.get_mut(&(pid, is_write)) {
            *left -= 1;
            if *left == 0 {
                self.pending.remove(&(pid, is_write));
            }
            true
        } else {
            false
        }
    }

    /// Decides whether this read of `pid` fails transiently.
    pub(crate) fn on_read(&mut self, pid: PageId) -> bool {
        if self.drain_burst(pid, false) {
            self.tally.transient_reads += 1;
            self.flight(obs::flight::EventKind::FaultTransientRead, "burst", pid);
            return true;
        }
        if self.fires(self.cfg.read_transient_ppm) {
            self.tally.transient_reads += 1;
            obs::cached_counter!("storage.fault.transient_reads").incr();
            self.flight(obs::flight::EventKind::FaultTransientRead, "injected", pid);
            self.open_burst(pid, false);
            return true;
        }
        false
    }

    /// Decides the fate of this write of `pid`.
    pub(crate) fn on_write(&mut self, pid: PageId) -> WriteDecision {
        if self.drain_burst(pid, true) {
            self.tally.transient_writes += 1;
            self.flight(obs::flight::EventKind::FaultTransientWrite, "burst", pid);
            return WriteDecision::Transient;
        }
        if self.fires(self.cfg.write_transient_ppm) {
            self.tally.transient_writes += 1;
            obs::cached_counter!("storage.fault.transient_writes").incr();
            self.flight(obs::flight::EventKind::FaultTransientWrite, "injected", pid);
            self.open_burst(pid, true);
            return WriteDecision::Transient;
        }
        if self.fires(self.cfg.torn_write_ppm) {
            self.tally.torn_writes += 1;
            obs::cached_counter!("storage.fault.torn_writes").incr();
            self.flight(obs::flight::EventKind::FaultTornWrite, "injected", pid);
            let offset = (self.next_u64() % (crate::page::PAGE_SIZE as u64 - 64)) as usize;
            return WriteDecision::Torn { offset };
        }
        WriteDecision::Ok
    }

    /// Decides whether this allocation fails probabilistically with
    /// ENOSPC. (The hard `capacity_pages` bound is checked by the disk,
    /// which knows the live page count.)
    pub(crate) fn on_allocate(&mut self) -> bool {
        if self.fires(self.cfg.enospc_ppm) {
            self.tally.enospc += 1;
            obs::cached_counter!("storage.fault.enospc").incr();
            obs::flight::record(obs::flight::EventKind::FaultEnospc, "injected", 0, 0);
            return true;
        }
        false
    }

    /// Records a capacity-bound ENOSPC (decided by the disk, tallied here
    /// so `injected()` covers every DiskFull the schedule caused).
    pub(crate) fn note_capacity_enospc(&mut self) {
        self.tally.enospc += 1;
        obs::cached_counter!("storage.fault.enospc").incr();
        obs::flight::record(obs::flight::EventKind::FaultEnospc, "capacity", 0, 0);
    }

    /// Leaves a flight-recorder breadcrumb for an injected fault, keyed
    /// by the page it hit.
    fn flight(&self, kind: obs::flight::EventKind, label: &str, pid: PageId) {
        obs::flight::record(kind, label, pid.page_no as u64, pid.file.0 as u64);
    }
}

/// Bounded deterministic retry for transient faults. One policy object,
/// consulted by the buffer pool — the single point through which all page
/// I/O flows — so the recovery behaviour is defined in exactly one place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per operation, including the first. A transient
    /// burst longer than `max_attempts - 1` escapes as
    /// [`StorageError::RetriesExhausted`].
    ///
    /// [`StorageError::RetriesExhausted`]: crate::error::StorageError::RetriesExhausted
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Absorbs bursts of up to 3 while keeping worst-case work per
        // operation strictly bounded; longer bursts escape as typed
        // errors rather than spinning.
        RetryPolicy { max_attempts: 4 }
    }
}

/// Word-wise page checksum (FNV-1a over little-endian u64 lanes). Fast
/// enough to run on every simulated transfer; collision-resistant enough
/// to catch any 64-byte torn span with near certainty.
pub fn page_checksum(buf: &[u8; crate::page::PAGE_SIZE]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for chunk in buf.chunks_exact(8) {
        let lane = crate::codec::u64_at(chunk, 0);
        h = (h ^ lane).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{zeroed_page, FileId};

    fn pid(n: u32) -> PageId {
        PageId::new(FileId(0), n)
    }

    /// Replays `ops` decisions against a fresh schedule and returns the
    /// fault pattern as a bitvector-like Vec<bool>.
    fn read_pattern(cfg: FaultConfig, ops: u32) -> Vec<bool> {
        let mut s = FaultSchedule::new(cfg);
        (0..ops).map(|i| s.on_read(pid(i))).collect()
    }

    #[test]
    fn same_seed_same_faults() {
        let cfg = FaultConfig::chaos(42, 50_000);
        assert_eq!(read_pattern(cfg, 2000), read_pattern(cfg, 2000));
    }

    #[test]
    fn different_seeds_differ() {
        let a = read_pattern(FaultConfig::chaos(1, 50_000), 2000);
        let b = read_pattern(FaultConfig::chaos(2, 50_000), 2000);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_rates_never_fire() {
        let mut s = FaultSchedule::new(FaultConfig::default());
        for i in 0..1000 {
            assert!(!s.on_read(pid(i)));
            assert!(matches!(s.on_write(pid(i)), WriteDecision::Ok));
            assert!(!s.on_allocate());
        }
        assert_eq!(s.injected().total(), 0);
    }

    #[test]
    fn rates_roughly_respected() {
        let mut s = FaultSchedule::new(FaultConfig {
            seed: 7,
            read_transient_ppm: 100_000, // 10%
            max_transient_burst: 1,
            ..FaultConfig::default()
        });
        let fired = (0..10_000).filter(|&i| s.on_read(pid(i))).count();
        // 10% of 10k draws; generous 3-sigma-ish band.
        assert!((700..1400).contains(&fired), "fired {fired} of 10000");
    }

    #[test]
    fn burst_fails_consecutive_attempts_then_clears() {
        // 100% fire rate, burst of exactly 3 (max 3, and we force the
        // draw by trying until we see a burst > 1).
        let mut s = FaultSchedule::new(FaultConfig {
            seed: 3,
            read_transient_ppm: 1_000_000,
            max_transient_burst: 3,
            ..FaultConfig::default()
        });
        let p = pid(9);
        assert!(s.on_read(p)); // opens a burst (length >= 1)
        let mut failures = 1;
        while s.pending.contains_key(&(p, false)) {
            // Pending burst drains without consulting the rng.
            assert!(s.on_read(p));
            failures += 1;
            assert!(failures <= 3, "burst exceeded configured max");
        }
        assert_eq!(s.injected().transient_reads, failures);
    }

    #[test]
    fn torn_write_offset_in_bounds() {
        let mut s = FaultSchedule::new(FaultConfig {
            seed: 11,
            torn_write_ppm: 1_000_000,
            ..FaultConfig::default()
        });
        for i in 0..100 {
            match s.on_write(pid(i)) {
                WriteDecision::Torn { offset } => {
                    assert!(offset + 64 <= crate::page::PAGE_SIZE)
                }
                _ => panic!("torn_write_ppm=100% must tear every write"),
            }
        }
        assert_eq!(s.injected().torn_writes, 100);
    }

    #[test]
    fn checksum_detects_torn_span() {
        let mut page = zeroed_page();
        page[100] = 7;
        let sum = page_checksum(&page);
        assert_eq!(sum, page_checksum(&page));
        for b in page[4000..4064].iter_mut() {
            *b ^= 0xFF;
        }
        assert_ne!(sum, page_checksum(&page));
    }
}
