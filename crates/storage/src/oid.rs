//! Object identifiers.
//!
//! §3: "We also assume that the system has a unique identifier for each
//! tuple. This unique identifier is referred to as the OID of the tuple."
//!
//! An [`Oid`] encodes `(file, page, slot)` in one `u64` whose natural
//! integer order equals physical disk order. The refinement step (§3.2)
//! sorts candidate pairs by OID precisely to turn tuple fetches into
//! near-sequential disk access, so this ordering property is load-bearing.

use crate::page::{FileId, PageId};
use std::fmt;

/// A tuple identifier: file (16 bits), page number (32 bits), slot
/// (16 bits), packed so that `Ord` equals physical placement order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(u64);

impl Oid {
    /// Packs the components. Panics if the file id exceeds 16 bits.
    #[inline]
    pub fn new(file: FileId, page_no: u32, slot: u16) -> Self {
        assert!(
            file.0 <= u16::MAX as u32,
            "file id {} exceeds OID capacity",
            file.0
        );
        Oid(((file.0 as u64) << 48) | ((page_no as u64) << 16) | slot as u64)
    }

    /// The raw packed value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an OID from its packed value.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        Oid(raw)
    }

    /// File component.
    #[inline]
    pub fn file(self) -> FileId {
        FileId((self.0 >> 48) as u32)
    }

    /// Page-number component.
    #[inline]
    pub fn page_no(self) -> u32 {
        ((self.0 >> 16) & 0xFFFF_FFFF) as u32
    }

    /// Slot component.
    #[inline]
    pub fn slot(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// The page this OID lives on.
    #[inline]
    pub fn page_id(self) -> PageId {
        PageId::new(self.file(), self.page_no())
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Oid({}:{}:{})",
            self.file().0,
            self.page_no(),
            self.slot()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let oid = Oid::new(FileId(3), 123_456, 789);
        assert_eq!(oid.file(), FileId(3));
        assert_eq!(oid.page_no(), 123_456);
        assert_eq!(oid.slot(), 789);
        assert_eq!(Oid::from_raw(oid.raw()), oid);
    }

    #[test]
    fn order_equals_physical_order() {
        let a = Oid::new(FileId(0), 0, 5);
        let b = Oid::new(FileId(0), 1, 0);
        let c = Oid::new(FileId(1), 0, 0);
        assert!(a < b && b < c);
        let d = Oid::new(FileId(0), 0, 6);
        assert!(a < d && d < b);
    }

    #[test]
    #[should_panic(expected = "exceeds OID capacity")]
    fn oversized_file_id_panics() {
        let _ = Oid::new(FileId(70_000), 0, 0);
    }
}
