//! External merge sort over fixed-size-record files.
//!
//! The refinement step begins: "the OID pairs are sorted using OID_R as
//! the primary sort key and OID_S as the secondary sort key. Duplicate
//! entries are eliminated during this sort." (§3.2). Candidate files can
//! exceed the join's work memory, so the sort is external: run generation
//! bounded by `work_mem` bytes followed by a single k-way merge, with
//! optional duplicate elimination during the merge.

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::record::{RecordFile, RecordReader};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Run-checkpoint callback: `(run_index, run)` once the run is durable.
pub type OnRun<'a> = &'a mut dyn FnMut(u32, &RecordFile) -> StorageResult<()>;

/// Checkpoint hooks for a resumable external sort.
///
/// `resume_runs` are durable runs recovered from the intent journal; the
/// sort seeds its run list with them and skips the input records they
/// already capture (sum of their counts — run generation is strictly
/// sequential, so the resume point is a single prefix length). `on_run`
/// fires after each *newly generated* run has been flushed to disk,
/// letting the caller journal a run checkpoint; its error aborts the sort.
pub struct SortCheckpoint<'a> {
    /// Runs recovered from a previous incarnation, in run-index order.
    pub resume_runs: Vec<RecordFile>,
    /// Called with `(run_index, run)` once the run is durable.
    pub on_run: OnRun<'a>,
}

/// Sorts `input` by the total order `cmp`, producing a new file. When
/// `dedup` is set, records comparing `Equal` are emitted once.
///
/// `work_mem` bounds the bytes of records held in memory during run
/// generation (at least one record is always held).
pub fn external_sort(
    pool: &BufferPool,
    input: &RecordFile,
    work_mem: usize,
    cmp: impl Fn(&[u8], &[u8]) -> Ordering + Copy,
    dedup: bool,
) -> StorageResult<RecordFile> {
    external_sort_ckpt(pool, input, work_mem, cmp, dedup, None)
}

/// [`external_sort`] with optional crash checkpoints: previously durable
/// runs are reused instead of regenerated, and each new run is reported
/// through the checkpoint callback once flushed.
pub fn external_sort_ckpt(
    pool: &BufferPool,
    input: &RecordFile,
    work_mem: usize,
    cmp: impl Fn(&[u8], &[u8]) -> Ordering + Copy,
    dedup: bool,
    ckpt: Option<SortCheckpoint<'_>>,
) -> StorageResult<RecordFile> {
    let _span = pbsm_obs::span("external sort");
    let mut runs: Vec<RecordFile> = Vec::new();
    let mut skip = 0u64;
    let mut on_run: Option<OnRun<'_>> = None;
    if let Some(c) = ckpt {
        skip = c.resume_runs.iter().map(RecordFile::count).sum();
        runs = c.resume_runs;
        on_run = Some(c.on_run);
    }
    match sort_with_runs(pool, input, work_mem, cmp, dedup, &mut runs, skip, on_run) {
        Ok(out) => Ok(out),
        Err(e) => {
            // An error mid-spill (e.g. ENOSPC) must not strand run pages:
            // the caller's degraded retry needs that space back. Dropping
            // a checkpointed run journals its release, which invalidates
            // the stale run checkpoints for any later recovery.
            for run in runs.drain(..) {
                run.destroy(pool);
            }
            Err(e)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn sort_with_runs(
    pool: &BufferPool,
    input: &RecordFile,
    work_mem: usize,
    cmp: impl Fn(&[u8], &[u8]) -> Ordering + Copy,
    dedup: bool,
    runs: &mut Vec<RecordFile>,
    skip: u64,
    mut on_run: Option<OnRun<'_>>,
) -> StorageResult<RecordFile> {
    let rec_size = input.rec_size();
    let per_run = (work_mem / rec_size).max(1);

    // Phase 1: run generation, starting past any resumed prefix.
    {
        let mut reader = input.reader_at(pool, skip);
        let mut chunk: Vec<u8> = Vec::with_capacity(per_run * rec_size);
        loop {
            let done = match reader.next_record()? {
                Some(rec) => {
                    chunk.extend_from_slice(rec);
                    false
                }
                None => true,
            };
            if chunk.len() / rec_size >= per_run || (done && !chunk.is_empty()) {
                let run = write_sorted_run(pool, &chunk, rec_size, cmp)?;
                runs.push(run);
                if let Some(cb) = on_run.as_deref_mut() {
                    let run = runs
                        .last()
                        .ok_or(StorageError::Corrupt("run list emptied during generation"))?;
                    // Make the run durable before checkpointing it; the
                    // journal record must never outrun the data.
                    pool.flush_file(run.file_id())?;
                    cb((runs.len() - 1) as u32, run)?;
                }
                chunk.clear();
            }
            if done {
                break;
            }
        }
    }
    pbsm_obs::cached_counter!("storage.extsort.runs").add(runs.len() as u64);

    // Phase 2: k-way merge (or pass-through).
    match runs.len() {
        0 => {
            let out = RecordFile::create(pool, rec_size)?;
            out.writer(pool).finish()?;
            Ok(out)
        }
        1 if !dedup => runs
            .pop()
            .ok_or(StorageError::Corrupt("run list emptied during merge")),
        _ => {
            pbsm_obs::cached_counter!("storage.extsort.merge_passes").incr();
            let out = merge_runs(pool, runs, rec_size, cmp, dedup)?;
            for run in runs.drain(..) {
                run.destroy(pool);
            }
            Ok(out)
        }
    }
}

fn write_sorted_run(
    pool: &BufferPool,
    chunk: &[u8],
    rec_size: usize,
    cmp: impl Fn(&[u8], &[u8]) -> Ordering,
) -> StorageResult<RecordFile> {
    let n = chunk.len() / rec_size;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        let ra = &chunk[a as usize * rec_size..(a as usize + 1) * rec_size];
        let rb = &chunk[b as usize * rec_size..(b as usize + 1) * rec_size];
        cmp(ra, rb)
    });
    let run = RecordFile::create(pool, rec_size)?;
    let result = {
        let mut w = run.writer(pool);
        let mut res = Ok(());
        for idx in order {
            let at = idx as usize * rec_size;
            if let Err(e) = w.push(&chunk[at..at + rec_size]) {
                res = Err(e);
                break;
            }
        }
        res.and_then(|()| w.finish())
    };
    match result {
        Ok(()) => Ok(run),
        Err(e) => {
            run.destroy(pool);
            Err(e)
        }
    }
}

/// Heap entry: current head record of one run. Ordering is inverted so the
/// `BinaryHeap` max-heap yields the *smallest* record first; ties broken by
/// run index for determinism.
struct Head<'a, F: Fn(&[u8], &[u8]) -> Ordering> {
    rec: Vec<u8>,
    run: usize,
    cmp: &'a F,
}

impl<F: Fn(&[u8], &[u8]) -> Ordering> PartialEq for Head<'_, F> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<F: Fn(&[u8], &[u8]) -> Ordering> Eq for Head<'_, F> {}
impl<F: Fn(&[u8], &[u8]) -> Ordering> PartialOrd for Head<'_, F> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<F: Fn(&[u8], &[u8]) -> Ordering> Ord for Head<'_, F> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.cmp)(&other.rec, &self.rec).then(other.run.cmp(&self.run))
    }
}

fn merge_runs(
    pool: &BufferPool,
    runs: &[RecordFile],
    rec_size: usize,
    cmp: impl Fn(&[u8], &[u8]) -> Ordering + Copy,
    dedup: bool,
) -> StorageResult<RecordFile> {
    let out = RecordFile::create(pool, rec_size)?;
    match merge_into(pool, runs, &out, cmp, dedup) {
        Ok(()) => Ok(out),
        Err(e) => {
            out.destroy(pool);
            Err(e)
        }
    }
}

fn merge_into(
    pool: &BufferPool,
    runs: &[RecordFile],
    out: &RecordFile,
    cmp: impl Fn(&[u8], &[u8]) -> Ordering + Copy,
    dedup: bool,
) -> StorageResult<()> {
    let mut w = out.writer(pool);
    let mut readers: Vec<RecordReader<'_>> = runs.iter().map(|r| r.reader(pool)).collect();
    let mut heap: BinaryHeap<Head<'_, _>> = BinaryHeap::with_capacity(runs.len());
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some(rec) = r.next_record()? {
            heap.push(Head {
                rec: rec.to_vec(),
                run: i,
                cmp: &cmp,
            });
        }
    }
    let mut last: Option<Vec<u8>> = None;
    while let Some(head) = heap.pop() {
        let emit = match &last {
            Some(prev) if dedup => cmp(prev, &head.rec) != Ordering::Equal,
            _ => true,
        };
        if emit {
            w.push(&head.rec)?;
            last = Some(head.rec.clone());
        }
        if let Some(rec) = readers[head.run].next_record()? {
            heap.push(Head {
                rec: rec.to_vec(),
                run: head.run,
                cmp: &cmp,
            });
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{DiskModel, SimDisk};
    use crate::page::PAGE_SIZE;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(frames * PAGE_SIZE, SimDisk::new(DiskModel::default()))
    }

    fn u64_cmp(a: &[u8], b: &[u8]) -> Ordering {
        let ka = u64::from_le_bytes(a[..8].try_into().unwrap());
        let kb = u64::from_le_bytes(b[..8].try_into().unwrap());
        ka.cmp(&kb)
    }

    fn fill(pool: &BufferPool, keys: &[u64]) -> RecordFile {
        let rf = RecordFile::create(pool, 8).unwrap();
        let mut w = rf.writer(pool);
        for k in keys {
            w.push(&k.to_le_bytes()).unwrap();
        }
        w.finish().unwrap();
        rf
    }

    fn read_keys(pool: &BufferPool, rf: &RecordFile) -> Vec<u64> {
        let mut out = Vec::new();
        let mut r = rf.reader(pool);
        while let Some(rec) = r.next_record().unwrap() {
            out.push(u64::from_le_bytes(rec[..8].try_into().unwrap()));
        }
        out
    }

    #[test]
    fn sorts_with_many_runs() {
        let pool = pool(32);
        // Pseudo-random keys; work_mem of 256 bytes → 32 records per run →
        // hundreds of runs.
        let keys: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let input = fill(&pool, &keys);
        let sorted = external_sort(&pool, &input, 256, u64_cmp, false).unwrap();
        let got = read_keys(&pool, &sorted);
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(sorted.count(), 10_000);
    }

    #[test]
    fn single_run_fast_path() {
        let pool = pool(32);
        let keys = vec![5u64, 3, 9, 1];
        let input = fill(&pool, &keys);
        let sorted = external_sort(&pool, &input, 1 << 20, u64_cmp, false).unwrap();
        assert_eq!(read_keys(&pool, &sorted), vec![1, 3, 5, 9]);
    }

    #[test]
    fn dedup_removes_duplicates_across_runs() {
        let pool = pool(32);
        let keys = vec![4u64, 2, 4, 2, 4, 1, 1, 9, 9, 9, 2];
        let input = fill(&pool, &keys);
        // Tiny work_mem forces duplicates to land in different runs.
        let sorted = external_sort(&pool, &input, 16, u64_cmp, true).unwrap();
        assert_eq!(read_keys(&pool, &sorted), vec![1, 2, 4, 9]);
    }

    #[test]
    fn dedup_single_run() {
        let pool = pool(32);
        let input = fill(&pool, &[7, 7, 7]);
        let sorted = external_sort(&pool, &input, 1 << 20, u64_cmp, true).unwrap();
        assert_eq!(read_keys(&pool, &sorted), vec![7]);
    }

    #[test]
    fn empty_input() {
        let pool = pool(32);
        let input = fill(&pool, &[]);
        let sorted = external_sort(&pool, &input, 1024, u64_cmp, true).unwrap();
        assert_eq!(read_keys(&pool, &sorted), Vec::<u64>::new());
    }

    #[test]
    fn checkpointed_sort_resumes_from_durable_runs() {
        // Model a crash during run generation: the first two runs (32
        // records each, matching work_mem 256 / rec_size 8) survived as
        // durable files; the rest of the input was never spilled. The
        // resumed sort must skip their prefix of the input, regenerate
        // only the remainder, and still produce the full sorted output.
        let pool = pool(32);
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let input = fill(&pool, &keys);

        let per_run = 256 / 8;
        let mut resume_runs = Vec::new();
        for chunk in keys.chunks(per_run).take(2) {
            let mut sorted = chunk.to_vec();
            sorted.sort_unstable();
            resume_runs.push(fill(&pool, &sorted));
        }

        let mut new_runs: Vec<u32> = Vec::new();
        let mut on_run = |idx: u32, run: &RecordFile| {
            assert_eq!(run.rec_size(), 8);
            new_runs.push(idx);
            Ok(())
        };
        let sorted = external_sort_ckpt(
            &pool,
            &input,
            256,
            u64_cmp,
            false,
            Some(SortCheckpoint {
                resume_runs,
                on_run: &mut on_run,
            }),
        )
        .unwrap();

        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(read_keys(&pool, &sorted), want);
        // 500 records − 64 resumed = 436 left → 14 new runs, indices 2..16.
        assert_eq!(new_runs, (2..16).collect::<Vec<u32>>());
    }

    #[test]
    fn stable_under_tiny_pool() {
        // Pool smaller than the data forces constant eviction during the
        // merge; results must still be correct.
        let pool = pool(8);
        let keys: Vec<u64> = (0..5000u64).rev().collect();
        let input = fill(&pool, &keys);
        let sorted = external_sort(&pool, &input, 1024, u64_cmp, false).unwrap();
        let got = read_keys(&pool, &sorted);
        assert_eq!(got, (0..5000u64).collect::<Vec<_>>());
    }
}
