//! The simulated disk and its 1996 cost model.
//!
//! The paper's testbed stored the database on a Seagate ST12400N (2 GB,
//! 3.5" SCSI). This module keeps all file contents in memory but meters
//! every page transfer: a *seek* is charged whenever an access is not
//! physically consecutive with the previous access, and every page charges
//! transfer time. The resulting [`DiskStats`] feed the Table-4-style I/O
//! cost columns of the benchmark harness.

use crate::error::{StorageError, StorageResult};
use crate::fault::{page_checksum, FaultConfig, FaultSchedule, FaultTally, WriteDecision};
use crate::page::{zeroed_page, FileId, PageBuf, PageId, PAGE_SIZE};
use pbsm_obs as obs;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Disk timing parameters.
///
/// Defaults approximate the ST12400N: ~11 ms average positioning time
/// (seek + rotational latency) and ~4.5 MB/s sustained transfer.
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Cost of a non-sequential access, in milliseconds.
    pub seek_ms: f64,
    /// Sustained transfer rate, in megabytes per second.
    pub transfer_mb_per_s: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            seek_ms: 11.0,
            transfer_mb_per_s: 4.5,
        }
    }
}

impl DiskModel {
    /// Transfer time of one page in milliseconds.
    #[inline]
    pub fn page_transfer_ms(&self) -> f64 {
        (PAGE_SIZE as f64 / (self.transfer_mb_per_s * 1024.0 * 1024.0)) * 1000.0
    }

    /// Models the time for an access pattern of `pages` page transfers of
    /// which `seeks` were non-sequential.
    #[inline]
    pub fn time_ms(&self, pages: u64, seeks: u64) -> f64 {
        seeks as f64 * self.seek_ms + pages as f64 * self.page_transfer_ms()
    }
}

/// Monotonically increasing I/O counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskStats {
    /// Pages read from disk.
    pub reads: u64,
    /// Pages written to disk.
    pub writes: u64,
    /// Non-sequential accesses (head movements).
    pub seeks: u64,
    /// Modeled elapsed I/O time in milliseconds.
    pub io_ms: f64,
}

impl DiskStats {
    /// Component-wise difference `self - earlier`, for per-phase deltas.
    pub fn delta_since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            seeks: self.seeks - earlier.seeks,
            io_ms: self.io_ms - earlier.io_ms,
        }
    }

    /// Total page transfers.
    pub fn pages(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Per-file observability counters (`storage.disk.file.<id>.*`), interned
/// once at file creation. Deferred like the pool counters: the I/O path
/// bumps plain `Cell`s and [`DiskCounters`] drains them at every
/// `pbsm_obs` synchronization point.
struct FileCounters {
    pending_reads: Cell<u64>,
    pending_writes: Cell<u64>,
    pending_seeks: Cell<u64>,
    reads: obs::Counter,
    writes: obs::Counter,
    seeks: obs::Counter,
}

impl FileCounters {
    fn new(id: FileId) -> Self {
        let name = |kind: &str| format!("storage.disk.file.{}.{kind}", id.0);
        FileCounters {
            pending_reads: Cell::new(0),
            pending_writes: Cell::new(0),
            pending_seeks: Cell::new(0),
            reads: obs::counter(&name("reads")),
            writes: obs::counter(&name("writes")),
            seeks: obs::counter(&name("seeks")),
        }
    }

    fn flush(&self) {
        for (pending, counter) in [
            (&self.pending_reads, self.reads),
            (&self.pending_writes, self.writes),
            (&self.pending_seeks, self.seeks),
        ] {
            let n = pending.take();
            if n > 0 {
                counter.add(n);
            }
        }
    }
}

struct FileData {
    pages: Vec<PageBuf>,
    /// Sidecar checksum per page, computed over the bytes the writer
    /// *intended* to store. A torn write damages `pages[i]` but not
    /// `sums[i]`, so the mismatch surfaces on the next read as
    /// [`StorageError::Corruption`]. Kept outside the 8 KB page so the
    /// on-page layout (and every page-capacity constant) is unchanged.
    sums: Vec<u64>,
    /// Freed files keep their slot (FileIds are never reused) but drop
    /// their pages.
    dropped: bool,
    counters: Rc<FileCounters>,
}

/// Disk-wide observability counters. `io_ns` mirrors `DiskStats::io_ms`
/// as integer nanoseconds so span deltas stay exact. One registered
/// [`obs::FlushMetrics`] source per disk drains both the disk-wide and
/// the per-file pending cells.
struct DiskCounters {
    pending_reads: Cell<u64>,
    pending_writes: Cell<u64>,
    pending_seeks: Cell<u64>,
    pending_io_ns: Cell<u64>,
    reads: obs::Counter,
    writes: obs::Counter,
    seeks: obs::Counter,
    io_ns: obs::Counter,
    files: RefCell<Vec<Rc<FileCounters>>>,
}

impl obs::FlushMetrics for DiskCounters {
    fn flush_metrics(&self) {
        for (pending, counter) in [
            (&self.pending_reads, self.reads),
            (&self.pending_writes, self.writes),
            (&self.pending_seeks, self.seeks),
            (&self.pending_io_ns, self.io_ns),
        ] {
            let n = pending.take();
            if n > 0 {
                counter.add(n);
            }
        }
        for f in self.files.borrow().iter() {
            f.flush();
        }
    }
}

/// Checksum of a freshly allocated (all-zero) page, computed once.
fn zeroed_sum() -> u64 {
    use std::sync::OnceLock;
    static SUM: OnceLock<u64> = OnceLock::new();
    *SUM.get_or_init(|| page_checksum(&zeroed_page()))
}

/// The simulated disk: an array of files, each an array of pages, plus the
/// metering state.
pub struct SimDisk {
    files: Vec<FileData>,
    model: DiskModel,
    stats: DiskStats,
    /// Last physical position touched, for sequentiality detection.
    last_pos: Option<PageId>,
    counters: Rc<DiskCounters>,
    /// Modeled seek / page-transfer costs in integer nanoseconds, for the
    /// `storage.disk.io_ns` counter.
    seek_ns: u64,
    transfer_ns: u64,
    /// Seeded fault plan; `None` (the default) is the perfect device.
    faults: Option<FaultSchedule>,
    /// Pages currently allocated across live files, for the hard
    /// `capacity_pages` bound. Dropped files return their pages.
    live_pages: u64,
}

impl SimDisk {
    /// Creates an empty disk with the given timing model.
    pub fn new(model: DiskModel) -> Self {
        SimDisk {
            files: Vec::new(),
            model,
            stats: DiskStats::default(),
            last_pos: None,
            counters: {
                let counters = Rc::new(DiskCounters {
                    pending_reads: Cell::new(0),
                    pending_writes: Cell::new(0),
                    pending_seeks: Cell::new(0),
                    pending_io_ns: Cell::new(0),
                    reads: obs::counter("storage.disk.reads"),
                    writes: obs::counter("storage.disk.writes"),
                    seeks: obs::counter("storage.disk.seeks"),
                    io_ns: obs::counter("storage.disk.io_ns"),
                    files: RefCell::new(Vec::new()),
                });
                let weak = Rc::downgrade(&counters);
                let weak: std::rc::Weak<dyn obs::FlushMetrics> = weak;
                obs::register_flusher(weak);
                counters
            },
            seek_ns: (model.seek_ms * 1e6) as u64,
            transfer_ns: (model.page_transfer_ms() * 1e6) as u64,
            faults: None,
            live_pages: 0,
        }
    }

    /// Installs (or clears) a seeded fault schedule. Takes effect for all
    /// subsequent I/O; the chaos harness uses this to load data on a
    /// perfect device and then pull the rug under the join.
    pub fn set_faults(&mut self, cfg: Option<FaultConfig>) {
        self.faults = cfg.map(FaultSchedule::new);
    }

    /// True when a fault schedule is installed.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Pages currently allocated across live files. Chaos tests size
    /// `capacity_pages` budgets relative to this.
    pub fn live_pages(&self) -> u64 {
        self.live_pages
    }

    /// Injected-fault totals of the current schedule (zeros when none).
    pub fn fault_tally(&self) -> FaultTally {
        self.faults
            .as_ref()
            .map_or(FaultTally::default(), |f| f.injected())
    }

    /// Creates a new empty file and returns its id.
    pub fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        let counters = Rc::new(FileCounters::new(id));
        self.counters.files.borrow_mut().push(Rc::clone(&counters));
        self.files.push(FileData {
            pages: Vec::new(),
            sums: Vec::new(),
            dropped: false,
            counters,
        });
        id
    }

    /// Drops a file's pages (temp-file cleanup). The id is not reused,
    /// and the pages count back toward free capacity.
    pub fn drop_file(&mut self, file: FileId) {
        if let Some(f) = self.files.get_mut(file.0 as usize) {
            self.live_pages -= f.pages.len() as u64;
            f.pages.clear();
            f.pages.shrink_to_fit();
            f.sums.clear();
            f.sums.shrink_to_fit();
            f.dropped = true;
        }
    }

    /// Number of allocated pages in `file`.
    pub fn num_pages(&self, file: FileId) -> u32 {
        self.files
            .get(file.0 as usize)
            .map_or(0, |f| f.pages.len() as u32)
    }

    /// Appends a zeroed page to `file` and returns its id. Allocation
    /// itself is not charged; the subsequent write is. Fails with
    /// [`StorageError::DiskFull`] when the schedule injects ENOSPC or the
    /// device is past its configured capacity.
    pub fn allocate_page(&mut self, file: FileId) -> StorageResult<PageId> {
        if self.files.get(file.0 as usize).is_none() {
            return Err(StorageError::InvalidPage(PageId::new(file, 0)));
        }
        if let Some(fs) = self.faults.as_mut() {
            if let Some(cap) = fs.config().capacity_pages {
                if self.live_pages >= cap {
                    fs.note_capacity_enospc();
                    return Err(StorageError::DiskFull { file: file.0 });
                }
            }
            if fs.on_allocate() {
                return Err(StorageError::DiskFull { file: file.0 });
            }
        }
        let f = &mut self.files[file.0 as usize];
        let page_no = f.pages.len() as u32;
        f.pages.push(zeroed_page());
        f.sums.push(zeroed_sum());
        self.live_pages += 1;
        Ok(PageId::new(file, page_no))
    }

    #[inline]
    fn account(&mut self, pid: PageId, is_write: bool) {
        let file = Rc::clone(&self.files[pid.file.0 as usize].counters);
        let sequential = match self.last_pos {
            Some(last) => last.file == pid.file && pid.page_no == last.page_no.wrapping_add(1),
            None => false,
        };
        let mut io_ns = self.transfer_ns;
        if !sequential {
            self.stats.seeks += 1;
            self.stats.io_ms += self.model.seek_ms;
            io_ns += self.seek_ns;
            obs::bump(&self.counters.pending_seeks);
            obs::bump(&file.pending_seeks);
        }
        self.stats.io_ms += self.model.page_transfer_ms();
        let pending_ns = &self.counters.pending_io_ns;
        pending_ns.set(pending_ns.get() + io_ns);
        if is_write {
            self.stats.writes += 1;
            obs::bump(&self.counters.pending_writes);
            obs::bump(&file.pending_writes);
        } else {
            self.stats.reads += 1;
            obs::bump(&self.counters.pending_reads);
            obs::bump(&file.pending_reads);
        }
        self.last_pos = Some(pid);
    }

    /// Reads a page into `buf`, charging the model. Verifies the sidecar
    /// checksum: a mismatch means a torn write damaged the stored copy,
    /// surfaced as the non-retryable [`StorageError::Corruption`].
    pub fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        let f = self
            .files
            .get(pid.file.0 as usize)
            .filter(|f| !f.dropped)
            .ok_or(StorageError::InvalidPage(pid))?;
        if pid.page_no as usize >= f.pages.len() {
            return Err(StorageError::InvalidPage(pid));
        }
        if let Some(fs) = self.faults.as_mut() {
            // Transient fault: no transfer happened, nothing is charged.
            if fs.on_read(pid) {
                return Err(StorageError::TransientRead(pid));
            }
        }
        let f = &self.files[pid.file.0 as usize];
        buf.copy_from_slice(&f.pages[pid.page_no as usize][..]);
        let sum_ok = f.sums[pid.page_no as usize] == page_checksum(buf);
        self.account(pid, false);
        if !sum_ok {
            obs::cached_counter!("storage.disk.checksum_failures").incr();
            return Err(StorageError::Corruption(pid));
        }
        Ok(())
    }

    /// Writes a page from `buf`, charging the model. A torn-write fault
    /// stores a damaged copy while reporting success — detected by the
    /// checksum on the next read, like a real torn sector.
    pub fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        let f = self
            .files
            .get(pid.file.0 as usize)
            .filter(|f| !f.dropped)
            .ok_or(StorageError::InvalidPage(pid))?;
        if pid.page_no as usize >= f.pages.len() {
            return Err(StorageError::InvalidPage(pid));
        }
        let decision = match self.faults.as_mut() {
            Some(fs) => fs.on_write(pid),
            None => WriteDecision::Ok,
        };
        if matches!(decision, WriteDecision::Transient) {
            // No transfer happened; the stored copy is untouched.
            return Err(StorageError::TransientWrite(pid));
        }
        let f = &mut self.files[pid.file.0 as usize];
        let page = &mut f.pages[pid.page_no as usize];
        page.copy_from_slice(buf);
        // The checksum always describes the *intended* bytes.
        f.sums[pid.page_no as usize] = page_checksum(buf);
        if let WriteDecision::Torn { offset } = decision {
            for b in page[offset..offset + 64].iter_mut() {
                *b ^= 0xFF;
            }
        }
        self.account(pid, true);
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The timing model in force.
    pub fn model(&self) -> DiskModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> PageBuf {
        let mut p = zeroed_page();
        p.fill(byte);
        p
    }

    #[test]
    fn roundtrip_and_counters() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p0 = d.allocate_page(f).unwrap();
        let p1 = d.allocate_page(f).unwrap();
        assert_eq!(d.num_pages(f), 2);

        d.write_page(p0, &page_of(7)).unwrap();
        d.write_page(p1, &page_of(9)).unwrap();
        let mut buf = zeroed_page();
        d.read_page(p0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));

        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        // Write p0 (seek), write p1 (sequential), read p0 (seek back).
        assert_eq!(s.seeks, 2);
    }

    #[test]
    fn sequential_writes_incur_one_seek() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let pids: Vec<_> = (0..10).map(|_| d.allocate_page(f).unwrap()).collect();
        let buf = page_of(1);
        for pid in &pids {
            d.write_page(*pid, &buf).unwrap();
        }
        assert_eq!(d.stats().seeks, 1);
        assert_eq!(d.stats().writes, 10);
    }

    #[test]
    fn random_writes_incur_many_seeks() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let pids: Vec<_> = (0..10).map(|_| d.allocate_page(f).unwrap()).collect();
        let buf = page_of(1);
        for pid in pids.iter().rev() {
            d.write_page(*pid, &buf).unwrap();
        }
        assert_eq!(d.stats().seeks, 10);
    }

    #[test]
    fn model_time_accumulates() {
        let model = DiskModel {
            seek_ms: 10.0,
            transfer_mb_per_s: 8.0,
        };
        let mut d = SimDisk::new(model);
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.write_page(p, &page_of(0)).unwrap();
        let expect = 10.0 + model.page_transfer_ms();
        assert!((d.stats().io_ms - expect).abs() < 1e-9);
        assert_eq!(model.time_ms(1, 1), expect);
    }

    #[test]
    fn delta_since() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.write_page(p, &page_of(0)).unwrap();
        let snap = d.stats();
        let mut buf = zeroed_page();
        d.read_page(p, &mut buf).unwrap();
        let delta = d.stats().delta_since(&snap);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.writes, 0);
    }

    #[test]
    fn torn_write_detected_on_read_back() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.set_faults(Some(crate::fault::FaultConfig {
            seed: 5,
            torn_write_ppm: 1_000_000,
            ..Default::default()
        }));
        d.write_page(p, &page_of(3)).unwrap(); // "succeeds", stores damage
        let mut buf = zeroed_page();
        assert_eq!(d.read_page(p, &mut buf), Err(StorageError::Corruption(p)));
        assert_eq!(d.fault_tally().torn_writes, 1);
        // Rewriting the page with faults off repairs it.
        d.set_faults(None);
        d.write_page(p, &page_of(3)).unwrap();
        d.read_page(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 3));
    }

    #[test]
    fn transient_read_leaves_data_intact() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.write_page(p, &page_of(8)).unwrap();
        d.set_faults(Some(crate::fault::FaultConfig {
            seed: 1,
            read_transient_ppm: 1_000_000,
            max_transient_burst: 1,
            ..Default::default()
        }));
        let mut buf = zeroed_page();
        assert_eq!(
            d.read_page(p, &mut buf),
            Err(StorageError::TransientRead(p))
        );
        let reads_before = d.stats().reads;
        d.set_faults(None);
        d.read_page(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 8));
        // The failed attempt charged no transfer.
        assert_eq!(d.stats().reads, reads_before + 1);
    }

    #[test]
    fn capacity_bound_enospc_and_reclaim() {
        let mut d = SimDisk::new(DiskModel::default());
        let f1 = d.create_file();
        let f2 = d.create_file();
        d.set_faults(Some(crate::fault::FaultConfig {
            seed: 0,
            capacity_pages: Some(2),
            ..Default::default()
        }));
        d.allocate_page(f1).unwrap();
        d.allocate_page(f1).unwrap();
        assert_eq!(
            d.allocate_page(f2),
            Err(StorageError::DiskFull { file: f2.0 })
        );
        assert_eq!(d.fault_tally().enospc, 1);
        // Dropping a file returns its pages to the capacity budget.
        d.drop_file(f1);
        d.allocate_page(f2).unwrap();
    }

    #[test]
    fn dropped_file_rejects_io() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.drop_file(f);
        let mut buf = zeroed_page();
        assert!(d.read_page(p, &mut buf).is_err());
    }
}
