//! The simulated disk and its 1996 cost model.
//!
//! The paper's testbed stored the database on a Seagate ST12400N (2 GB,
//! 3.5" SCSI). This module keeps all file contents in memory but meters
//! every page transfer: a *seek* is charged whenever an access is not
//! physically consecutive with the previous access, and every page charges
//! transfer time. The resulting [`DiskStats`] feed the Table-4-style I/O
//! cost columns of the benchmark harness.

use crate::error::{StorageError, StorageResult};
use crate::page::{zeroed_page, FileId, PageBuf, PageId, PAGE_SIZE};
use pbsm_obs as obs;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Disk timing parameters.
///
/// Defaults approximate the ST12400N: ~11 ms average positioning time
/// (seek + rotational latency) and ~4.5 MB/s sustained transfer.
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Cost of a non-sequential access, in milliseconds.
    pub seek_ms: f64,
    /// Sustained transfer rate, in megabytes per second.
    pub transfer_mb_per_s: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            seek_ms: 11.0,
            transfer_mb_per_s: 4.5,
        }
    }
}

impl DiskModel {
    /// Transfer time of one page in milliseconds.
    #[inline]
    pub fn page_transfer_ms(&self) -> f64 {
        (PAGE_SIZE as f64 / (self.transfer_mb_per_s * 1024.0 * 1024.0)) * 1000.0
    }

    /// Models the time for an access pattern of `pages` page transfers of
    /// which `seeks` were non-sequential.
    #[inline]
    pub fn time_ms(&self, pages: u64, seeks: u64) -> f64 {
        seeks as f64 * self.seek_ms + pages as f64 * self.page_transfer_ms()
    }
}

/// Monotonically increasing I/O counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskStats {
    /// Pages read from disk.
    pub reads: u64,
    /// Pages written to disk.
    pub writes: u64,
    /// Non-sequential accesses (head movements).
    pub seeks: u64,
    /// Modeled elapsed I/O time in milliseconds.
    pub io_ms: f64,
}

impl DiskStats {
    /// Component-wise difference `self - earlier`, for per-phase deltas.
    pub fn delta_since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            seeks: self.seeks - earlier.seeks,
            io_ms: self.io_ms - earlier.io_ms,
        }
    }

    /// Total page transfers.
    pub fn pages(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Per-file observability counters (`storage.disk.file.<id>.*`), interned
/// once at file creation. Deferred like the pool counters: the I/O path
/// bumps plain `Cell`s and [`DiskCounters`] drains them at every
/// `pbsm_obs` synchronization point.
struct FileCounters {
    pending_reads: Cell<u64>,
    pending_writes: Cell<u64>,
    pending_seeks: Cell<u64>,
    reads: obs::Counter,
    writes: obs::Counter,
    seeks: obs::Counter,
}

impl FileCounters {
    fn new(id: FileId) -> Self {
        let name = |kind: &str| format!("storage.disk.file.{}.{kind}", id.0);
        FileCounters {
            pending_reads: Cell::new(0),
            pending_writes: Cell::new(0),
            pending_seeks: Cell::new(0),
            reads: obs::counter(&name("reads")),
            writes: obs::counter(&name("writes")),
            seeks: obs::counter(&name("seeks")),
        }
    }

    fn flush(&self) {
        for (pending, counter) in [
            (&self.pending_reads, self.reads),
            (&self.pending_writes, self.writes),
            (&self.pending_seeks, self.seeks),
        ] {
            let n = pending.take();
            if n > 0 {
                counter.add(n);
            }
        }
    }
}

struct FileData {
    pages: Vec<PageBuf>,
    /// Freed files keep their slot (FileIds are never reused) but drop
    /// their pages.
    dropped: bool,
    counters: Rc<FileCounters>,
}

/// Disk-wide observability counters. `io_ns` mirrors `DiskStats::io_ms`
/// as integer nanoseconds so span deltas stay exact. One registered
/// [`obs::FlushMetrics`] source per disk drains both the disk-wide and
/// the per-file pending cells.
struct DiskCounters {
    pending_reads: Cell<u64>,
    pending_writes: Cell<u64>,
    pending_seeks: Cell<u64>,
    pending_io_ns: Cell<u64>,
    reads: obs::Counter,
    writes: obs::Counter,
    seeks: obs::Counter,
    io_ns: obs::Counter,
    files: RefCell<Vec<Rc<FileCounters>>>,
}

impl obs::FlushMetrics for DiskCounters {
    fn flush_metrics(&self) {
        for (pending, counter) in [
            (&self.pending_reads, self.reads),
            (&self.pending_writes, self.writes),
            (&self.pending_seeks, self.seeks),
            (&self.pending_io_ns, self.io_ns),
        ] {
            let n = pending.take();
            if n > 0 {
                counter.add(n);
            }
        }
        for f in self.files.borrow().iter() {
            f.flush();
        }
    }
}

/// The simulated disk: an array of files, each an array of pages, plus the
/// metering state.
pub struct SimDisk {
    files: Vec<FileData>,
    model: DiskModel,
    stats: DiskStats,
    /// Last physical position touched, for sequentiality detection.
    last_pos: Option<PageId>,
    counters: Rc<DiskCounters>,
    /// Modeled seek / page-transfer costs in integer nanoseconds, for the
    /// `storage.disk.io_ns` counter.
    seek_ns: u64,
    transfer_ns: u64,
}

impl SimDisk {
    /// Creates an empty disk with the given timing model.
    pub fn new(model: DiskModel) -> Self {
        SimDisk {
            files: Vec::new(),
            model,
            stats: DiskStats::default(),
            last_pos: None,
            counters: {
                let counters = Rc::new(DiskCounters {
                    pending_reads: Cell::new(0),
                    pending_writes: Cell::new(0),
                    pending_seeks: Cell::new(0),
                    pending_io_ns: Cell::new(0),
                    reads: obs::counter("storage.disk.reads"),
                    writes: obs::counter("storage.disk.writes"),
                    seeks: obs::counter("storage.disk.seeks"),
                    io_ns: obs::counter("storage.disk.io_ns"),
                    files: RefCell::new(Vec::new()),
                });
                let weak = Rc::downgrade(&counters);
                let weak: std::rc::Weak<dyn obs::FlushMetrics> = weak;
                obs::register_flusher(weak);
                counters
            },
            seek_ns: (model.seek_ms * 1e6) as u64,
            transfer_ns: (model.page_transfer_ms() * 1e6) as u64,
        }
    }

    /// Creates a new empty file and returns its id.
    pub fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        let counters = Rc::new(FileCounters::new(id));
        self.counters.files.borrow_mut().push(Rc::clone(&counters));
        self.files.push(FileData {
            pages: Vec::new(),
            dropped: false,
            counters,
        });
        id
    }

    /// Drops a file's pages (temp-file cleanup). The id is not reused.
    pub fn drop_file(&mut self, file: FileId) {
        if let Some(f) = self.files.get_mut(file.0 as usize) {
            f.pages.clear();
            f.pages.shrink_to_fit();
            f.dropped = true;
        }
    }

    /// Number of allocated pages in `file`.
    pub fn num_pages(&self, file: FileId) -> u32 {
        self.files
            .get(file.0 as usize)
            .map_or(0, |f| f.pages.len() as u32)
    }

    /// Appends a zeroed page to `file` and returns its id. Allocation
    /// itself is not charged; the subsequent write is.
    pub fn allocate_page(&mut self, file: FileId) -> StorageResult<PageId> {
        let f = self
            .files
            .get_mut(file.0 as usize)
            .ok_or(StorageError::InvalidPage(PageId::new(file, 0)))?;
        let page_no = f.pages.len() as u32;
        f.pages.push(zeroed_page());
        Ok(PageId::new(file, page_no))
    }

    #[inline]
    fn account(&mut self, pid: PageId, is_write: bool) {
        let file = Rc::clone(&self.files[pid.file.0 as usize].counters);
        let sequential = match self.last_pos {
            Some(last) => last.file == pid.file && pid.page_no == last.page_no.wrapping_add(1),
            None => false,
        };
        let mut io_ns = self.transfer_ns;
        if !sequential {
            self.stats.seeks += 1;
            self.stats.io_ms += self.model.seek_ms;
            io_ns += self.seek_ns;
            obs::bump(&self.counters.pending_seeks);
            obs::bump(&file.pending_seeks);
        }
        self.stats.io_ms += self.model.page_transfer_ms();
        let pending_ns = &self.counters.pending_io_ns;
        pending_ns.set(pending_ns.get() + io_ns);
        if is_write {
            self.stats.writes += 1;
            obs::bump(&self.counters.pending_writes);
            obs::bump(&file.pending_writes);
        } else {
            self.stats.reads += 1;
            obs::bump(&self.counters.pending_reads);
            obs::bump(&file.pending_reads);
        }
        self.last_pos = Some(pid);
    }

    /// Reads a page into `buf`, charging the model.
    pub fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        let f = self
            .files
            .get(pid.file.0 as usize)
            .filter(|f| !f.dropped)
            .ok_or(StorageError::InvalidPage(pid))?;
        let page = f
            .pages
            .get(pid.page_no as usize)
            .ok_or(StorageError::InvalidPage(pid))?;
        buf.copy_from_slice(&page[..]);
        self.account(pid, false);
        Ok(())
    }

    /// Writes a page from `buf`, charging the model.
    pub fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        let f = self
            .files
            .get_mut(pid.file.0 as usize)
            .filter(|f| !f.dropped)
            .ok_or(StorageError::InvalidPage(pid))?;
        let page = f
            .pages
            .get_mut(pid.page_no as usize)
            .ok_or(StorageError::InvalidPage(pid))?;
        page.copy_from_slice(buf);
        self.account(pid, true);
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The timing model in force.
    pub fn model(&self) -> DiskModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> PageBuf {
        let mut p = zeroed_page();
        p.fill(byte);
        p
    }

    #[test]
    fn roundtrip_and_counters() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p0 = d.allocate_page(f).unwrap();
        let p1 = d.allocate_page(f).unwrap();
        assert_eq!(d.num_pages(f), 2);

        d.write_page(p0, &page_of(7)).unwrap();
        d.write_page(p1, &page_of(9)).unwrap();
        let mut buf = zeroed_page();
        d.read_page(p0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));

        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        // Write p0 (seek), write p1 (sequential), read p0 (seek back).
        assert_eq!(s.seeks, 2);
    }

    #[test]
    fn sequential_writes_incur_one_seek() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let pids: Vec<_> = (0..10).map(|_| d.allocate_page(f).unwrap()).collect();
        let buf = page_of(1);
        for pid in &pids {
            d.write_page(*pid, &buf).unwrap();
        }
        assert_eq!(d.stats().seeks, 1);
        assert_eq!(d.stats().writes, 10);
    }

    #[test]
    fn random_writes_incur_many_seeks() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let pids: Vec<_> = (0..10).map(|_| d.allocate_page(f).unwrap()).collect();
        let buf = page_of(1);
        for pid in pids.iter().rev() {
            d.write_page(*pid, &buf).unwrap();
        }
        assert_eq!(d.stats().seeks, 10);
    }

    #[test]
    fn model_time_accumulates() {
        let model = DiskModel {
            seek_ms: 10.0,
            transfer_mb_per_s: 8.0,
        };
        let mut d = SimDisk::new(model);
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.write_page(p, &page_of(0)).unwrap();
        let expect = 10.0 + model.page_transfer_ms();
        assert!((d.stats().io_ms - expect).abs() < 1e-9);
        assert_eq!(model.time_ms(1, 1), expect);
    }

    #[test]
    fn delta_since() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.write_page(p, &page_of(0)).unwrap();
        let snap = d.stats();
        let mut buf = zeroed_page();
        d.read_page(p, &mut buf).unwrap();
        let delta = d.stats().delta_since(&snap);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.writes, 0);
    }

    #[test]
    fn dropped_file_rejects_io() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.drop_file(f);
        let mut buf = zeroed_page();
        assert!(d.read_page(p, &mut buf).is_err());
    }
}
