//! The simulated disk and its 1996 cost model.
//!
//! The paper's testbed stored the database on a Seagate ST12400N (2 GB,
//! 3.5" SCSI). This module keeps all file contents in memory but meters
//! every page transfer: a *seek* is charged whenever an access is not
//! physically consecutive with the previous access, and every page charges
//! transfer time. The resulting [`DiskStats`] feed the Table-4-style I/O
//! cost columns of the benchmark harness.

use crate::error::{StorageError, StorageResult};
use crate::fault::{page_checksum, FaultConfig, FaultSchedule, FaultTally, WriteDecision};
use crate::lockcheck::{self, LockId};
use crate::page::{zeroed_page, FileId, PageBuf, PageId, PAGE_SIZE};
use pbsm_obs as obs;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Disk timing parameters.
///
/// Defaults approximate the ST12400N: ~11 ms average positioning time
/// (seek + rotational latency) and ~4.5 MB/s sustained transfer.
#[derive(Clone, Copy, Debug)]
pub struct DiskModel {
    /// Cost of a non-sequential access, in milliseconds.
    pub seek_ms: f64,
    /// Sustained transfer rate, in megabytes per second.
    pub transfer_mb_per_s: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            seek_ms: 11.0,
            transfer_mb_per_s: 4.5,
        }
    }
}

impl DiskModel {
    /// Transfer time of one page in milliseconds.
    #[inline]
    pub fn page_transfer_ms(&self) -> f64 {
        (PAGE_SIZE as f64 / (self.transfer_mb_per_s * 1024.0 * 1024.0)) * 1000.0
    }

    /// Models the time for an access pattern of `pages` page transfers of
    /// which `seeks` were non-sequential.
    #[inline]
    pub fn time_ms(&self, pages: u64, seeks: u64) -> f64 {
        seeks as f64 * self.seek_ms + pages as f64 * self.page_transfer_ms()
    }
}

/// Monotonically increasing I/O counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskStats {
    /// Pages read from disk.
    pub reads: u64,
    /// Pages written to disk.
    pub writes: u64,
    /// Non-sequential accesses (head movements).
    pub seeks: u64,
    /// Modeled elapsed I/O time in milliseconds.
    pub io_ms: f64,
}

impl DiskStats {
    /// Component-wise difference `self - earlier`, for per-phase deltas.
    pub fn delta_since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            seeks: self.seeks - earlier.seeks,
            io_ms: self.io_ms - earlier.io_ms,
        }
    }

    /// Total page transfers.
    pub fn pages(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Per-file observability counters (`storage.disk.file.<id>.*`), interned
/// once at file creation. Deferred like the pool counters: the I/O path
/// bumps atomics (the disk may sit behind a shared pool's mutex) and
/// [`DiskCounters`] drains them at every `pbsm_obs` synchronization
/// point on the registering thread.
struct FileCounters {
    pending_reads: AtomicU64,
    pending_writes: AtomicU64,
    pending_seeks: AtomicU64,
    reads: obs::Counter,
    writes: obs::Counter,
    seeks: obs::Counter,
}

impl FileCounters {
    fn new(id: FileId) -> Self {
        let name = |kind: &str| format!("storage.disk.file.{}.{kind}", id.0);
        FileCounters {
            pending_reads: AtomicU64::new(0),
            pending_writes: AtomicU64::new(0),
            pending_seeks: AtomicU64::new(0),
            reads: obs::counter(&name("reads")),
            writes: obs::counter(&name("writes")),
            seeks: obs::counter(&name("seeks")),
        }
    }

    fn flush(&self) {
        for (pending, counter) in [
            (&self.pending_reads, self.reads),
            (&self.pending_writes, self.writes),
            (&self.pending_seeks, self.seeks),
        ] {
            let n = pending.swap(0, Ordering::Relaxed);
            if n > 0 {
                counter.add(n);
            }
        }
    }
}

struct FileData {
    pages: Vec<PageBuf>,
    /// Sidecar checksum per page, computed over the bytes the writer
    /// *intended* to store. A torn write damages `pages[i]` but not
    /// `sums[i]`, so the mismatch surfaces on the next read as
    /// [`StorageError::Corruption`]. Kept outside the 8 KB page so the
    /// on-page layout (and every page-capacity constant) is unchanged.
    sums: Vec<u64>,
    /// Freed files keep their slot (FileIds are never reused) but drop
    /// their pages.
    dropped: bool,
    counters: Arc<FileCounters>,
}

/// Disk-wide observability counters. `io_ns` mirrors `DiskStats::io_ms`
/// as integer nanoseconds so span deltas stay exact. One registered
/// [`obs::FlushMetrics`] source per disk drains both the disk-wide and
/// the per-file pending cells.
struct DiskCounters {
    pending_reads: AtomicU64,
    pending_writes: AtomicU64,
    pending_seeks: AtomicU64,
    pending_io_ns: AtomicU64,
    reads: obs::Counter,
    writes: obs::Counter,
    seeks: obs::Counter,
    io_ns: obs::Counter,
    /// Mirror of `SimDisk::live_pages`, published as the
    /// `storage.disk.live_pages` gauge only when it moved since the last
    /// flush so idle flushes stay free.
    live_pages: AtomicU64,
    live_pages_published: AtomicU64,
    live_pages_gauge: obs::Gauge,
    files: Mutex<Vec<Arc<FileCounters>>>,
}

impl Drop for DiskCounters {
    fn drop(&mut self) {
        // No disk, no live pages: publish the resting level so the
        // gauge's post-drop baseline is exact (leak-sentinel contract:
        // gauges return to baseline when the Db is dropped). Resolved by
        // name, not the stored handle: handles index the *registering*
        // thread's registry, and the drop may run on any thread.
        obs::gauge("storage.disk.live_pages").set(0);
        self.live_pages_published.store(0, Ordering::Relaxed);
    }
}

impl obs::FlushMetrics for DiskCounters {
    fn flush_metrics(&self) {
        for (pending, counter) in [
            (&self.pending_reads, self.reads),
            (&self.pending_writes, self.writes),
            (&self.pending_seeks, self.seeks),
            (&self.pending_io_ns, self.io_ns),
        ] {
            let n = pending.swap(0, Ordering::Relaxed);
            if n > 0 {
                counter.add(n);
            }
        }
        let live = self.live_pages.load(Ordering::Relaxed);
        if live != self.live_pages_published.load(Ordering::Relaxed) {
            self.live_pages_gauge.set(live);
            self.live_pages_published.store(live, Ordering::Relaxed);
        }
        let files = lockcheck::lock(&self.files, LockId::DiskFiles);
        for f in files.iter() {
            f.flush();
        }
    }
}

/// Checksum of a freshly allocated (all-zero) page, computed once.
fn zeroed_sum() -> u64 {
    use std::sync::OnceLock;
    static SUM: OnceLock<u64> = OnceLock::new();
    *SUM.get_or_init(|| page_checksum(&zeroed_page()))
}

/// The simulated disk: an array of files, each an array of pages, plus the
/// metering state.
pub struct SimDisk {
    files: Vec<FileData>,
    model: DiskModel,
    stats: DiskStats,
    /// Last physical position touched, for sequentiality detection.
    last_pos: Option<PageId>,
    counters: Arc<DiskCounters>,
    /// Modeled seek / page-transfer costs in integer nanoseconds, for the
    /// `storage.disk.io_ns` counter.
    seek_ns: u64,
    transfer_ns: u64,
    /// Seeded fault plan; `None` (the default) is the perfect device.
    faults: Option<FaultSchedule>,
    /// Pages currently allocated across live files, for the hard
    /// `capacity_pages` bound. Dropped files return their pages.
    live_pages: u64,
    /// Every operation attempted over the disk's lifetime (reads, writes,
    /// allocations — including ones that failed). The crash harness
    /// probes a fault-free run to learn how many ops a join performs,
    /// then samples crash points inside that range.
    total_ops: u64,
    /// Countdown to the armed crash point: `Some(0)` means the *next*
    /// operation crashes. Re-armed by [`SimDisk::set_faults`].
    ops_until_crash: Option<u64>,
    /// Whether the crashing write itself is torn (see `FaultConfig`).
    crash_tear_in_flight: bool,
    /// True once the crash point fired: the handle is poisoned and every
    /// operation returns [`StorageError::Crashed`].
    crashed: bool,
    /// Torn writes that have not yet been confirmed by a [`SimDisk::sync`]:
    /// for each page, the span offset and the pre-write bytes that a crash
    /// would resurrect (the old half of a mixed old/new sector image).
    pending_tears: BTreeMap<PageId, (usize, [u8; TEAR_SPAN])>,
}

/// Bytes damaged by a torn write (one simulated sector's worth).
const TEAR_SPAN: usize = 64;

impl SimDisk {
    /// Creates an empty disk with the given timing model.
    pub fn new(model: DiskModel) -> Self {
        SimDisk {
            files: Vec::new(),
            model,
            stats: DiskStats::default(),
            last_pos: None,
            counters: {
                let counters = Arc::new(DiskCounters {
                    pending_reads: AtomicU64::new(0),
                    pending_writes: AtomicU64::new(0),
                    pending_seeks: AtomicU64::new(0),
                    pending_io_ns: AtomicU64::new(0),
                    reads: obs::counter("storage.disk.reads"),
                    writes: obs::counter("storage.disk.writes"),
                    seeks: obs::counter("storage.disk.seeks"),
                    io_ns: obs::counter("storage.disk.io_ns"),
                    live_pages: AtomicU64::new(0),
                    live_pages_published: AtomicU64::new(0),
                    live_pages_gauge: obs::gauge("storage.disk.live_pages"),
                    files: Mutex::new(Vec::new()),
                });
                let weak = Arc::downgrade(&counters);
                let weak: std::sync::Weak<dyn obs::FlushMetrics> = weak;
                obs::register_flusher(weak);
                counters
            },
            seek_ns: (model.seek_ms * 1e6) as u64,
            transfer_ns: (model.page_transfer_ms() * 1e6) as u64,
            faults: None,
            live_pages: 0,
            total_ops: 0,
            ops_until_crash: None,
            crash_tear_in_flight: false,
            crashed: false,
            pending_tears: BTreeMap::new(),
        }
    }

    /// Installs (or clears) a seeded fault schedule. Takes effect for all
    /// subsequent I/O; the chaos harness uses this to load data on a
    /// perfect device and then pull the rug under the join. A configured
    /// `crash_after_ops` counts from this arming point.
    pub fn set_faults(&mut self, cfg: Option<FaultConfig>) {
        self.ops_until_crash = cfg.as_ref().and_then(|c| c.crash_after_ops);
        self.crash_tear_in_flight = cfg.as_ref().is_some_and(|c| c.crash_tear_in_flight);
        self.faults = cfg.map(FaultSchedule::new);
    }

    /// True when a fault schedule is installed.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Pages currently allocated across live files. Chaos tests size
    /// `capacity_pages` budgets relative to this.
    pub fn live_pages(&self) -> u64 {
        self.live_pages
    }

    /// Injected-fault totals of the current schedule (zeros when none).
    pub fn fault_tally(&self) -> FaultTally {
        self.faults
            .as_ref()
            .map_or(FaultTally::default(), |f| f.injected())
    }

    /// Every operation attempted over the disk's lifetime.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// True once a crash point fired and poisoned the handle.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Number of file slots ever created (dropped files keep their slot).
    pub fn num_files(&self) -> u32 {
        self.files.len() as u32
    }

    /// True when `file` exists and has been dropped.
    pub fn is_dropped(&self, file: FileId) -> bool {
        self.files.get(file.0 as usize).is_some_and(|f| f.dropped)
    }

    /// Durability point: confirms every write issued so far. Pending torn
    /// writes are healed — their stored copies already hold the intended
    /// bytes, and the sync means the device acknowledged them. Charges
    /// nothing and does not count as an operation, so enabling sync
    /// boundaries leaves every metered counter untouched.
    pub fn sync(&mut self) {
        self.pending_tears.clear();
    }

    /// Counts one operation against the armed crash point. Returns `true`
    /// when this operation is the one that crashes.
    fn count_op(&mut self) -> bool {
        self.total_ops += 1;
        match self.ops_until_crash.as_mut() {
            Some(0) => {
                self.ops_until_crash = None;
                true
            }
            Some(left) => {
                *left -= 1;
                false
            }
            None => false,
        }
    }

    /// Materializes every pending tear — each damaged span reverts to its
    /// pre-write bytes, while the sidecar checksum keeps describing the
    /// intended bytes — and poisons the handle.
    fn enter_crash(&mut self) {
        obs::flight::record(
            obs::flight::EventKind::CrashPoint,
            "disk",
            self.total_ops,
            0,
        );
        let tears = std::mem::take(&mut self.pending_tears);
        for (pid, (offset, old)) in tears {
            if let Some(f) = self.files.get_mut(pid.file.0 as usize) {
                if !f.dropped && (pid.page_no as usize) < f.pages.len() {
                    f.pages[pid.page_no as usize][offset..offset + TEAR_SPAN].copy_from_slice(&old);
                }
            }
        }
        self.crashed = true;
    }

    /// Kills the simulated process right now: pending tears materialize
    /// and every subsequent operation fails with
    /// [`StorageError::Crashed`]. Test hook; the scheduled path is
    /// `FaultConfig::crash_after_ops`.
    pub fn crash_now(&mut self) {
        self.enter_crash();
    }

    /// Un-poisons the handle, as the first step of recovery ("the process
    /// restarted"). Damage done by the crash — materialized tears, files
    /// that missed their cleanup — stays, exactly like a real restart.
    pub fn clear_crash(&mut self) {
        self.crashed = false;
        self.ops_until_crash = None;
    }

    /// Creates a new empty file and returns its id.
    pub fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        let counters = Arc::new(FileCounters::new(id));
        lockcheck::lock(&self.counters.files, LockId::DiskFiles).push(Arc::clone(&counters));
        self.files.push(FileData {
            pages: Vec::new(),
            sums: Vec::new(),
            dropped: false,
            counters,
        });
        id
    }

    /// Drops a file's pages (temp-file cleanup). The id is not reused,
    /// and the pages count back toward free capacity. A no-op on a
    /// crashed handle: a dead process cannot clean up after itself, which
    /// is exactly the garbage `Db::recover` exists to reclaim.
    pub fn drop_file(&mut self, file: FileId) {
        if self.crashed {
            return;
        }
        self.pending_tears.retain(|pid, _| pid.file != file);
        if let Some(f) = self.files.get_mut(file.0 as usize) {
            self.live_pages -= f.pages.len() as u64;
            self.counters
                .live_pages
                .store(self.live_pages, Ordering::Relaxed);
            f.pages.clear();
            f.pages.shrink_to_fit();
            f.sums.clear();
            f.sums.shrink_to_fit();
            f.dropped = true;
        }
    }

    /// Number of allocated pages in `file`.
    pub fn num_pages(&self, file: FileId) -> u32 {
        self.files
            .get(file.0 as usize)
            .map_or(0, |f| f.pages.len() as u32)
    }

    /// Appends a zeroed page to `file` and returns its id. Allocation
    /// itself is not charged; the subsequent write is. Fails with
    /// [`StorageError::DiskFull`] when the schedule injects ENOSPC or the
    /// device is past its configured capacity.
    pub fn allocate_page(&mut self, file: FileId) -> StorageResult<PageId> {
        if self.crashed {
            return Err(StorageError::Crashed);
        }
        if self.count_op() {
            self.enter_crash();
            return Err(StorageError::Crashed);
        }
        if self.files.get(file.0 as usize).is_none() {
            return Err(StorageError::InvalidPage(PageId::new(file, 0)));
        }
        if let Some(fs) = self.faults.as_mut() {
            if let Some(cap) = fs.config().capacity_pages {
                if self.live_pages >= cap {
                    fs.note_capacity_enospc();
                    return Err(StorageError::DiskFull { file: file.0 });
                }
            }
            if fs.on_allocate() {
                return Err(StorageError::DiskFull { file: file.0 });
            }
        }
        let f = &mut self.files[file.0 as usize];
        let page_no = f.pages.len() as u32;
        f.pages.push(zeroed_page());
        f.sums.push(zeroed_sum());
        self.live_pages += 1;
        self.counters
            .live_pages
            .store(self.live_pages, Ordering::Relaxed);
        Ok(PageId::new(file, page_no))
    }

    #[inline]
    fn account(&mut self, pid: PageId, is_write: bool) {
        let file = Arc::clone(&self.files[pid.file.0 as usize].counters);
        let sequential = match self.last_pos {
            Some(last) => last.file == pid.file && pid.page_no == last.page_no.wrapping_add(1),
            None => false,
        };
        let mut io_ns = self.transfer_ns;
        if !sequential {
            self.stats.seeks += 1;
            self.stats.io_ms += self.model.seek_ms;
            io_ns += self.seek_ns;
            obs::bump_shared(&self.counters.pending_seeks);
            obs::bump_shared(&file.pending_seeks);
        }
        self.stats.io_ms += self.model.page_transfer_ms();
        self.counters
            .pending_io_ns
            .fetch_add(io_ns, Ordering::Relaxed);
        if is_write {
            self.stats.writes += 1;
            obs::bump_shared(&self.counters.pending_writes);
            obs::bump_shared(&file.pending_writes);
        } else {
            self.stats.reads += 1;
            obs::bump_shared(&self.counters.pending_reads);
            obs::bump_shared(&file.pending_reads);
        }
        self.last_pos = Some(pid);
    }

    /// Reads a page into `buf`, charging the model. Verifies the sidecar
    /// checksum: a mismatch means a torn write damaged the stored copy,
    /// surfaced as the non-retryable [`StorageError::Corruption`].
    pub fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        if self.crashed {
            return Err(StorageError::Crashed);
        }
        if self.count_op() {
            self.enter_crash();
            return Err(StorageError::Crashed);
        }
        let f = self
            .files
            .get(pid.file.0 as usize)
            .filter(|f| !f.dropped)
            .ok_or(StorageError::InvalidPage(pid))?;
        if pid.page_no as usize >= f.pages.len() {
            return Err(StorageError::InvalidPage(pid));
        }
        if let Some(fs) = self.faults.as_mut() {
            // Transient fault: no transfer happened, nothing is charged.
            if fs.on_read(pid) {
                return Err(StorageError::TransientRead(pid));
            }
        }
        let f = &self.files[pid.file.0 as usize];
        buf.copy_from_slice(&f.pages[pid.page_no as usize][..]);
        let sum_ok = f.sums[pid.page_no as usize] == page_checksum(buf);
        self.account(pid, false);
        if !sum_ok {
            obs::cached_counter!("storage.disk.checksum_failures").incr();
            return Err(StorageError::Corruption(pid));
        }
        Ok(())
    }

    /// Writes a page from `buf`, charging the model. A torn-write fault
    /// reports success and stores the intended bytes, but registers a
    /// *pending tear*: if a crash strikes before the next [`sync`], the
    /// damaged span reverts to its pre-write contents and the checksum
    /// mismatch surfaces on the post-crash read, like a real torn sector.
    ///
    /// [`sync`]: SimDisk::sync
    pub fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        if self.crashed {
            return Err(StorageError::Crashed);
        }
        let crash_here = self.count_op();
        let f = self
            .files
            .get(pid.file.0 as usize)
            .filter(|f| !f.dropped)
            .ok_or(StorageError::InvalidPage(pid))?;
        if pid.page_no as usize >= f.pages.len() {
            return Err(StorageError::InvalidPage(pid));
        }
        if crash_here {
            if self.crash_tear_in_flight {
                // The dying write reaches the platter half-done: store the
                // intended bytes, then revert one sector-sized span to the
                // old image. Offset derives from the op count so the same
                // crash point tears the same bytes on every replay.
                let offset = (self.total_ops.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13) as usize
                    % (PAGE_SIZE - TEAR_SPAN);
                let f = &mut self.files[pid.file.0 as usize];
                let page = &mut f.pages[pid.page_no as usize];
                let mut old = [0u8; TEAR_SPAN];
                old.copy_from_slice(&page[offset..offset + TEAR_SPAN]);
                page.copy_from_slice(buf);
                f.sums[pid.page_no as usize] = page_checksum(buf);
                page[offset..offset + TEAR_SPAN].copy_from_slice(&old);
                self.pending_tears.remove(&pid);
            }
            self.enter_crash();
            return Err(StorageError::Crashed);
        }
        let decision = match self.faults.as_mut() {
            Some(fs) => fs.on_write(pid),
            None => WriteDecision::Ok,
        };
        if matches!(decision, WriteDecision::Transient) {
            // No transfer happened; the stored copy is untouched.
            return Err(StorageError::TransientWrite(pid));
        }
        // Capture the pre-write span before overwriting, in case this
        // write is torn: a crash resurrects those bytes.
        let torn_old = if let WriteDecision::Torn { offset } = decision {
            let page = &self.files[pid.file.0 as usize].pages[pid.page_no as usize];
            let mut old = [0u8; TEAR_SPAN];
            old.copy_from_slice(&page[offset..offset + TEAR_SPAN]);
            Some((offset, old))
        } else {
            None
        };
        let f = &mut self.files[pid.file.0 as usize];
        let page = &mut f.pages[pid.page_no as usize];
        page.copy_from_slice(buf);
        // The checksum always describes the *intended* bytes.
        f.sums[pid.page_no as usize] = page_checksum(buf);
        match torn_old {
            Some((offset, old)) => {
                self.pending_tears.insert(pid, (offset, old));
            }
            // A clean full-page rewrite supersedes any earlier tear.
            None => {
                self.pending_tears.remove(&pid);
            }
        }
        self.account(pid, true);
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The timing model in force.
    pub fn model(&self) -> DiskModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> PageBuf {
        let mut p = zeroed_page();
        p.fill(byte);
        p
    }

    #[test]
    fn roundtrip_and_counters() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p0 = d.allocate_page(f).unwrap();
        let p1 = d.allocate_page(f).unwrap();
        assert_eq!(d.num_pages(f), 2);

        d.write_page(p0, &page_of(7)).unwrap();
        d.write_page(p1, &page_of(9)).unwrap();
        let mut buf = zeroed_page();
        d.read_page(p0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));

        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        // Write p0 (seek), write p1 (sequential), read p0 (seek back).
        assert_eq!(s.seeks, 2);
    }

    #[test]
    fn sequential_writes_incur_one_seek() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let pids: Vec<_> = (0..10).map(|_| d.allocate_page(f).unwrap()).collect();
        let buf = page_of(1);
        for pid in &pids {
            d.write_page(*pid, &buf).unwrap();
        }
        assert_eq!(d.stats().seeks, 1);
        assert_eq!(d.stats().writes, 10);
    }

    #[test]
    fn random_writes_incur_many_seeks() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let pids: Vec<_> = (0..10).map(|_| d.allocate_page(f).unwrap()).collect();
        let buf = page_of(1);
        for pid in pids.iter().rev() {
            d.write_page(*pid, &buf).unwrap();
        }
        assert_eq!(d.stats().seeks, 10);
    }

    #[test]
    fn model_time_accumulates() {
        let model = DiskModel {
            seek_ms: 10.0,
            transfer_mb_per_s: 8.0,
        };
        let mut d = SimDisk::new(model);
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.write_page(p, &page_of(0)).unwrap();
        let expect = 10.0 + model.page_transfer_ms();
        assert!((d.stats().io_ms - expect).abs() < 1e-9);
        assert_eq!(model.time_ms(1, 1), expect);
    }

    #[test]
    fn delta_since() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.write_page(p, &page_of(0)).unwrap();
        let snap = d.stats();
        let mut buf = zeroed_page();
        d.read_page(p, &mut buf).unwrap();
        let delta = d.stats().delta_since(&snap);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.writes, 0);
    }

    #[test]
    fn torn_write_detected_after_crash() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.set_faults(Some(crate::fault::FaultConfig {
            seed: 5,
            torn_write_ppm: 1_000_000,
            ..Default::default()
        }));
        d.write_page(p, &page_of(3)).unwrap(); // "succeeds", tear pending
        assert_eq!(d.fault_tally().torn_writes, 1);
        // Until a crash, the stored copy is intact: the tear is latent.
        let mut buf = zeroed_page();
        d.read_page(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 3));
        // Crash: the tear materializes (the span reverts to the old,
        // all-zero image) and the next read reports corruption.
        d.crash_now();
        assert_eq!(d.read_page(p, &mut buf), Err(StorageError::Crashed));
        d.clear_crash();
        assert_eq!(d.read_page(p, &mut buf), Err(StorageError::Corruption(p)));
        // Rewriting the page with faults off repairs it.
        d.set_faults(None);
        d.write_page(p, &page_of(3)).unwrap();
        d.read_page(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 3));
    }

    #[test]
    fn sync_heals_pending_tears() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.set_faults(Some(crate::fault::FaultConfig {
            seed: 5,
            torn_write_ppm: 1_000_000,
            ..Default::default()
        }));
        d.write_page(p, &page_of(4)).unwrap();
        // The sync confirms the write, so a later crash damages nothing.
        d.sync();
        d.crash_now();
        d.clear_crash();
        let mut buf = zeroed_page();
        d.read_page(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 4));
    }

    #[test]
    fn clean_rewrite_supersedes_pending_tear() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.set_faults(Some(crate::fault::FaultConfig {
            seed: 5,
            torn_write_ppm: 1_000_000,
            ..Default::default()
        }));
        d.write_page(p, &page_of(1)).unwrap(); // tear pending
        d.set_faults(None);
        d.write_page(p, &page_of(2)).unwrap(); // clean full rewrite
        d.crash_now();
        d.clear_crash();
        let mut buf = zeroed_page();
        d.read_page(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2));
    }

    #[test]
    fn crash_point_poisons_every_later_op() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p0 = d.allocate_page(f).unwrap();
        let p1 = d.allocate_page(f).unwrap();
        d.write_page(p0, &page_of(1)).unwrap();
        // Arm: op 0 (the next one) survives, op 1 crashes.
        d.set_faults(Some(crate::fault::FaultConfig::crash_at(7, 1)));
        d.write_page(p1, &page_of(2)).unwrap();
        assert!(!d.is_crashed());
        assert_eq!(d.write_page(p0, &page_of(9)), Err(StorageError::Crashed));
        assert!(d.is_crashed());
        let mut buf = zeroed_page();
        assert_eq!(d.read_page(p1, &mut buf), Err(StorageError::Crashed));
        assert_eq!(d.allocate_page(f), Err(StorageError::Crashed));
        // drop_file is a no-op on a dead process: the pages leak.
        d.drop_file(f);
        assert!(!d.is_dropped(f));
        assert_eq!(d.num_pages(f), 2);
        // Restart: p1 reads back intact (its write completed cleanly),
        // while the in-flight write to p0 left a mixed old/new image
        // whose checksum mismatch is reported as corruption.
        d.clear_crash();
        d.set_faults(None);
        d.read_page(p1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2));
        assert_eq!(d.read_page(p0, &mut buf), Err(StorageError::Corruption(p0)));
    }

    #[test]
    fn crash_point_is_deterministic() {
        let run = || {
            let mut d = SimDisk::new(DiskModel::default());
            let f = d.create_file();
            let pids: Vec<_> = (0..4).map(|_| d.allocate_page(f).unwrap()).collect();
            d.set_faults(Some(crate::fault::FaultConfig::crash_at(3, 5)));
            let mut outcomes = Vec::new();
            for round in 0..3u8 {
                for pid in &pids {
                    outcomes.push(d.write_page(*pid, &page_of(round)).is_ok());
                }
            }
            d.clear_crash();
            d.set_faults(None);
            let mut images = Vec::new();
            for pid in &pids {
                let mut buf = zeroed_page();
                images.push(d.read_page(*pid, &mut buf).map(|()| buf.to_vec()));
            }
            (outcomes, images)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn transient_read_leaves_data_intact() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.write_page(p, &page_of(8)).unwrap();
        d.set_faults(Some(crate::fault::FaultConfig {
            seed: 1,
            read_transient_ppm: 1_000_000,
            max_transient_burst: 1,
            ..Default::default()
        }));
        let mut buf = zeroed_page();
        assert_eq!(
            d.read_page(p, &mut buf),
            Err(StorageError::TransientRead(p))
        );
        let reads_before = d.stats().reads;
        d.set_faults(None);
        d.read_page(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 8));
        // The failed attempt charged no transfer.
        assert_eq!(d.stats().reads, reads_before + 1);
    }

    #[test]
    fn capacity_bound_enospc_and_reclaim() {
        let mut d = SimDisk::new(DiskModel::default());
        let f1 = d.create_file();
        let f2 = d.create_file();
        d.set_faults(Some(crate::fault::FaultConfig {
            seed: 0,
            capacity_pages: Some(2),
            ..Default::default()
        }));
        d.allocate_page(f1).unwrap();
        d.allocate_page(f1).unwrap();
        assert_eq!(
            d.allocate_page(f2),
            Err(StorageError::DiskFull { file: f2.0 })
        );
        assert_eq!(d.fault_tally().enospc, 1);
        // Dropping a file returns its pages to the capacity budget.
        d.drop_file(f1);
        d.allocate_page(f2).unwrap();
    }

    #[test]
    fn dropped_file_rejects_io() {
        let mut d = SimDisk::new(DiskModel::default());
        let f = d.create_file();
        let p = d.allocate_page(f).unwrap();
        d.drop_file(f);
        let mut buf = zeroed_page();
        assert!(d.read_page(p, &mut buf).is_err());
    }
}
