//! Minimal little-endian buffer codec.
//!
//! A drop-in replacement for the slice of the `bytes` crate's `Buf` /
//! `BufMut` traits the tuple format uses, so the build stays free of
//! external dependencies. [`Buf`] reads advance the slice in place
//! (`&mut &[u8]`); [`BufMut`] writes append to a `Vec<u8>`.
//!
//! Like `bytes`, the getters panic when the buffer is too short —
//! callers guard with [`Buf::remaining`] before multi-byte reads.

/// Sequential little-endian reads from a byte slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads the next `N` bytes as an array, advancing the cursor.
    fn take<const N: usize>(&mut self) -> [u8; N];

    fn get_u8(&mut self) -> u8 {
        self.take::<1>()[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take())
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take())
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take())
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn take<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.split_at(N);
        *self = tail;
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        out
    }
}

/// Reads `N` bytes at `at` as an array. Panics if out of bounds — the
/// caller owns the length invariant, exactly like slice indexing.
#[inline]
pub fn bytes_at<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&bytes[at..at + N]);
    out
}

/// Little-endian `u32` at byte offset `at`.
#[inline]
pub fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes_at(bytes, at))
}

/// Little-endian `u64` at byte offset `at`.
#[inline]
pub fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes_at(bytes, at))
}

/// Little-endian `f64` at byte offset `at`.
#[inline]
pub fn f64_at(bytes: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(bytes_at(bytes, at))
}

/// Little-endian appends to a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, bytes: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_f64_le(-12.345);
        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(buf.get_f64_le(), -12.345);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn short_read_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32_le();
    }
}
