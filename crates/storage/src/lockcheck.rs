//! Runtime latch-order sentinel.
//!
//! The workspace's lock discipline is declared twice — statically in
//! `crates/lint/src/locks.rs` (the `lock-order` rule walks the call graph
//! against it) and here, where every real acquisition in a
//! `debug_assertions` build is checked against the same partial order on
//! a thread-local acquisition stack. A cross-check test in the lint crate
//! asserts the two tables agree edge for edge, so the static model and
//! the running system validate each other.
//!
//! # The declared order
//!
//! ```text
//! catalog ──→ pool.state ──→ pool.frame
//!    │             │   ⇅ (pin protocol)
//!    │             ├──→ pool.disk ──→ disk.files
//!    │             └──→ pool.retry
//!    ├──→ pool.journal ──→ pool.disk
//!    └──→ parallel.next / parallel.slots   (leaves; never nested)
//! ```
//!
//! Two relaxations, shared verbatim with the static rule:
//!
//! * **Pin protocol** ([`HELD_EXEMPT`]): a *held* `pool.frame` latch
//!   constrains nothing. A held latch implies `pin > 0` (or a lock-free
//!   in-flight guard drop), and no other thread ever blocks on a pinned
//!   frame's latch — evictors and flushers assert `pin == 0` first — so
//!   a held latch cannot appear in any cross-thread wait cycle. This is
//!   why a caller may keep a `PageRef` while pinning further pages, and
//!   why guard drops may take `pool.state` for the unpin.
//! * **Serialized edges** ([`SERIALIZED`]): *acquiring* a `pin == 0`
//!   frame latch while holding `pool.disk` (the flush batch does) is
//!   legal only while `pool.state` — the dominator that serializes the
//!   pair across threads — is also held.
//!
//! In release builds everything here compiles to nothing: the tracking
//! functions are empty `#[inline(always)]` stubs and [`Tracked`] is a
//! transparent newtype, so the 978 gated bench values stay byte-identical.
//!
//! A violation increments `storage.lockcheck.violations`, appends a dump
//! line to the file named by `PBSM_LOCKCHECK_DUMP` (when set), and panics
//! with the offending stack — loud enough that the stress suite cannot
//! pass over it. Tallies are process-global atomics published to the
//! `storage.lockcheck.*` counters only by an explicit
//! [`publish_metrics`] call, so they never perturb span deltas in
//! ordinary debug tests.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Every declared lock in the workspace, mirrored by name in the lint
/// registry (`crates/lint/src/locks.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockId {
    /// `Db::catalog` (`RwLock<Catalog>`).
    Catalog,
    /// `BufferPool::state` — the frame-table mutex.
    PoolState,
    /// Any per-frame latch (`RwLock<Frame>`). Distinct frames share the
    /// id; holding several at once is legal (the flush batch does).
    PoolFrame,
    /// `BufferPool::disk` — the device mutex.
    PoolDisk,
    /// `BufferPool::retry` — the retry-policy cell.
    PoolRetry,
    /// `BufferPool::journal` — the intent-journal slot.
    PoolJournal,
    /// `DiskCounters::files` — the per-file counter roster.
    DiskFiles,
    /// `parallel.rs` work-queue cursor.
    ParallelNext,
    /// `parallel.rs` result slots.
    ParallelSlots,
}

/// Every tracked lock, for exhaustive cross-checks against the lint
/// registry (which must declare exactly this set, by these names).
pub const ALL_LOCKS: &[LockId] = &[
    LockId::Catalog,
    LockId::PoolState,
    LockId::PoolFrame,
    LockId::PoolDisk,
    LockId::PoolRetry,
    LockId::PoolJournal,
    LockId::DiskFiles,
    LockId::ParallelNext,
    LockId::ParallelSlots,
];

impl LockId {
    /// The registry name, identical to the lint declaration.
    pub const fn name(self) -> &'static str {
        match self {
            LockId::Catalog => "catalog",
            LockId::PoolState => "pool.state",
            LockId::PoolFrame => "pool.frame",
            LockId::PoolDisk => "pool.disk",
            LockId::PoolRetry => "pool.retry",
            LockId::PoolJournal => "pool.journal",
            LockId::DiskFiles => "disk.files",
            LockId::ParallelNext => "parallel.next",
            LockId::ParallelSlots => "parallel.slots",
        }
    }
}

/// Declared partial order: `(held, acquired)` pairs that are legal.
/// Everything not listed (and not excused below) is a violation.
pub const ORDER: &[(LockId, LockId)] = &[
    (LockId::Catalog, LockId::PoolState),
    (LockId::Catalog, LockId::PoolFrame),
    (LockId::Catalog, LockId::PoolDisk),
    (LockId::Catalog, LockId::PoolRetry),
    (LockId::Catalog, LockId::PoolJournal),
    (LockId::Catalog, LockId::DiskFiles),
    (LockId::Catalog, LockId::ParallelNext),
    (LockId::Catalog, LockId::ParallelSlots),
    (LockId::PoolState, LockId::PoolFrame),
    (LockId::PoolState, LockId::PoolDisk),
    (LockId::PoolState, LockId::PoolRetry),
    (LockId::PoolState, LockId::DiskFiles),
    (LockId::PoolJournal, LockId::PoolDisk),
    (LockId::PoolJournal, LockId::DiskFiles),
    (LockId::PoolDisk, LockId::DiskFiles),
];

/// Locks whose *holding* constrains nothing (the pin-count protocol).
/// A held frame latch implies `pin > 0` or a lock-free in-flight guard
/// drop, and no other thread ever blocks on a pinned frame's latch, so
/// a held latch cannot appear in any cross-thread wait cycle. (Two
/// threads taking exclusive latches on the same two pages in opposite
/// orders is a caller bug the latches themselves self-deadlock on; one
/// id covers all frames, so the sentinel cannot order instances.)
pub const HELD_EXEMPT: &[LockId] = &[LockId::PoolFrame];

/// Directional edges `(held, acquired, dominator)` legal only while the
/// dominator is held: the flush and miss paths take `pin == 0` frame
/// latches while holding the disk mutex, which is safe only because
/// `pool.state` serializes those paths across threads.
pub const SERIALIZED: &[(LockId, LockId, LockId)] =
    &[(LockId::PoolDisk, LockId::PoolFrame, LockId::PoolState)];

/// Is acquiring `acq` legal while `held` (in acquisition order) is held?
/// Pure and always compiled, so the lint crate's cross-check test and the
/// release build agree on the model even though release never calls it
/// per-acquisition.
pub fn order_allows(held: &[LockId], acq: LockId) -> bool {
    held.iter().all(|&h| pair_allows(held, h, acq))
}

fn pair_allows(held: &[LockId], h: LockId, acq: LockId) -> bool {
    if HELD_EXEMPT.contains(&h) {
        return true;
    }
    if h == acq {
        // Same-id nesting is self-deadlock for every remaining (mutex /
        // rwlock-behind-one-instance) id.
        return false;
    }
    if ORDER.contains(&(h, acq)) {
        return true;
    }
    SERIALIZED
        .iter()
        .any(|&(a, b, dom)| (a, b) == (h, acq) && held.contains(&dom))
}

/// Process-wide tallies, mirrored into `storage.lockcheck.*` on demand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockTallies {
    /// Tracked acquisitions checked against the order.
    pub acquisitions: u64,
    /// Tracked releases observed.
    pub releases: u64,
    /// Order violations caught (each also panics in debug builds).
    pub violations: u64,
}

static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);
static RELEASES: AtomicU64 = AtomicU64::new(0);
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);
static PUBLISHED: Mutex<LockTallies> = Mutex::new(LockTallies {
    acquisitions: 0,
    releases: 0,
    violations: 0,
});

/// The tallies so far. All zero in release builds.
pub fn tallies() -> LockTallies {
    LockTallies {
        acquisitions: ACQUISITIONS.load(Ordering::Relaxed),
        releases: RELEASES.load(Ordering::Relaxed),
        violations: VIOLATIONS.load(Ordering::Relaxed),
    }
}

/// Publishes the tallies accumulated since the last publish to the
/// `storage.lockcheck.*` counters. Called explicitly (stress harness,
/// sentinel tests) rather than from a metrics flusher so the informational
/// counters never leak into unrelated span deltas.
pub fn publish_metrics() {
    let now = tallies();
    let mut last = PUBLISHED.lock().unwrap_or_else(PoisonError::into_inner);
    let deltas = [
        (
            "storage.lockcheck.acquisitions",
            now.acquisitions - last.acquisitions,
        ),
        ("storage.lockcheck.releases", now.releases - last.releases),
        (
            "storage.lockcheck.violations",
            now.violations - last.violations,
        ),
    ];
    for (name, d) in deltas {
        if d > 0 {
            pbsm_obs::counter(name).add(d);
        }
    }
    *last = now;
}

#[cfg(debug_assertions)]
mod armed {
    use super::{LockId, ACQUISITIONS, RELEASES, VIOLATIONS};
    use std::cell::RefCell;
    use std::sync::atomic::Ordering;

    thread_local! {
        static STACK: RefCell<Vec<LockId>> = const { RefCell::new(Vec::new()) };
    }

    /// Records (and order-checks) an acquisition of `id`. Called *before*
    /// blocking on the real lock so an inversion panics instead of
    /// deadlocking. Panics on violation.
    pub fn acquired(id: LockId) {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if !super::order_allows(&stack, id) {
                VIOLATIONS.fetch_add(1, Ordering::Relaxed);
                let held: Vec<&str> = stack.iter().map(|l| l.name()).collect();
                let msg = format!(
                    "lockcheck: acquiring `{}` while holding [{}] violates the declared order",
                    id.name(),
                    held.join(", ")
                );
                super::dump_violation(&msg);
                panic!("{msg}");
            }
            stack.push(id);
        });
    }

    /// Records the release of `id`. Guards may drop out of acquisition
    /// order (e.g. two `PageRef`s dropped oldest-first), so this removes
    /// the most recent matching entry rather than popping blindly.
    pub fn released(id: LockId) {
        RELEASES.fetch_add(1, Ordering::Relaxed);
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&l| l == id) {
                stack.remove(pos);
            }
        });
    }

    /// The calling thread's current acquisition stack (test hook).
    pub fn held_stack() -> Vec<LockId> {
        STACK.with(|s| s.borrow().clone())
    }

    /// Clears the calling thread's stack — for tests that `catch_unwind`
    /// a seeded violation: the panic unwinds the guards of the *legal*
    /// acquisitions, but the violating id was never pushed, so after
    /// recovery the stack is already consistent; this is belt and braces.
    pub fn reset_thread() {
        STACK.with(|s| s.borrow_mut().clear());
    }
}

#[cfg(debug_assertions)]
pub use armed::{acquired, held_stack, released, reset_thread};

#[cfg(not(debug_assertions))]
mod disarmed {
    use super::LockId;

    #[inline(always)]
    pub fn acquired(_id: LockId) {}

    #[inline(always)]
    pub fn released(_id: LockId) {}

    pub fn held_stack() -> Vec<LockId> {
        Vec::new()
    }

    #[inline(always)]
    pub fn reset_thread() {}
}

#[cfg(not(debug_assertions))]
pub use disarmed::{acquired, held_stack, released, reset_thread};

/// Appends `msg` to the file named by `PBSM_LOCKCHECK_DUMP`, best-effort.
/// CI arms the variable so a violation leaves an artifact even after the
/// panicking thread is torn down. Debug-only like its sole caller.
#[cfg(debug_assertions)]
fn dump_violation(msg: &str) {
    use std::io::Write as _;
    if let Ok(path) = std::env::var("PBSM_LOCKCHECK_DUMP") {
        if path.is_empty() {
            return;
        }
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(f, "{msg}");
        }
    }
}

/// An RAII wrapper pairing a real guard with its [`LockId`]: derefs
/// through to the guard's target and reports the release on drop. Deref
/// coercion keeps call sites written against the bare guard compiling
/// unchanged.
pub struct Tracked<G> {
    inner: G,
    #[cfg(debug_assertions)]
    id: LockId,
}

impl<G> Tracked<G> {
    /// Adopts an already-recorded acquisition (the caller ran
    /// [`acquired`] before blocking, as the latch helpers do).
    pub fn adopt(id: LockId, inner: G) -> Tracked<G> {
        #[cfg(not(debug_assertions))]
        let _ = id;
        Tracked {
            inner,
            #[cfg(debug_assertions)]
            id,
        }
    }
}

impl<G: Deref> Deref for Tracked<G> {
    type Target = G::Target;
    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl<G: DerefMut> DerefMut for Tracked<G> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.inner
    }
}

impl<G> Drop for Tracked<G> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        released(self.id);
    }
}

/// Locks `m` as lock `id`, order-checked, ignoring poison: shared state
/// stays consistent through the lock discipline, not unwind flags, and a
/// panicked reader must not wedge every other serving thread.
pub fn lock<'a, T>(m: &'a Mutex<T>, id: LockId) -> Tracked<MutexGuard<'a, T>> {
    acquired(id);
    Tracked::adopt(id, m.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Read-locks `l` as lock `id`, order-checked, ignoring poison.
pub fn read<'a, T>(l: &'a RwLock<T>, id: LockId) -> Tracked<RwLockReadGuard<'a, T>> {
    acquired(id);
    Tracked::adopt(id, l.read().unwrap_or_else(PoisonError::into_inner))
}

/// Write-locks `l` as lock `id`, order-checked, ignoring poison.
pub fn write<'a, T>(l: &'a RwLock<T>, id: LockId) -> Tracked<RwLockWriteGuard<'a, T>> {
    acquired(id);
    Tracked::adopt(id, l.write().unwrap_or_else(PoisonError::into_inner))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_order_is_a_dag() {
        // A cycle in ORDER would make the declaration self-contradictory:
        // follow edges from every node; none may reach itself.
        fn reaches(from: LockId, to: LockId, depth: usize) -> bool {
            if depth > ORDER.len() {
                return false;
            }
            ORDER
                .iter()
                .filter(|(a, _)| *a == from)
                .any(|&(_, b)| b == to || reaches(b, to, depth + 1))
        }
        for &(a, _) in ORDER {
            assert!(
                !reaches(a, a, 0),
                "declared ORDER has a cycle through {:?}",
                a
            );
        }
    }

    #[test]
    fn order_allows_declared_and_rejects_reversed() {
        assert!(order_allows(&[LockId::PoolState], LockId::PoolDisk));
        assert!(!order_allows(&[LockId::PoolDisk], LockId::PoolState));
        assert!(order_allows(&[], LockId::PoolDisk));
        // Pin protocol: a held latch constrains nothing, so both the
        // unpin direction and e.g. a caller pinning further pages work.
        assert!(order_allows(&[LockId::PoolFrame], LockId::PoolState));
        assert!(order_allows(&[LockId::PoolState], LockId::PoolFrame));
        assert!(order_allows(&[LockId::PoolFrame], LockId::PoolRetry));
        assert!(order_allows(&[LockId::PoolFrame], LockId::PoolDisk));
        // Serialized edge: disk → frame needs its dominator.
        assert!(!order_allows(&[LockId::PoolDisk], LockId::PoolFrame));
        assert!(order_allows(
            &[LockId::PoolState, LockId::PoolDisk],
            LockId::PoolFrame
        ));
        // Same-id reacquisition: frames only (distinct instances).
        assert!(order_allows(&[LockId::PoolFrame], LockId::PoolFrame));
        assert!(!order_allows(&[LockId::PoolState], LockId::PoolState));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn sentinel_trips_on_inverted_acquisition() {
        // Deliberate inversion: hold the "disk" then take the "state".
        // The sentinel must panic before the second lock blocks.
        let disk = Mutex::new(0u8);
        let state = Mutex::new(0u8);
        let before = tallies().violations;
        let result = std::panic::catch_unwind(|| {
            let _d = lock(&disk, LockId::PoolDisk);
            let _s = lock(&state, LockId::PoolState); // ← fires here
        });
        reset_thread();
        assert!(result.is_err(), "inverted acquisition must panic");
        assert_eq!(tallies().violations, before + 1);
        // And the declared direction is silent.
        let _s = lock(&state, LockId::PoolState);
        let _d = lock(&disk, LockId::PoolDisk);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn stack_tracks_acquire_release() {
        reset_thread();
        let state = Mutex::new(0u8);
        {
            let _g = lock(&state, LockId::PoolState);
            assert_eq!(held_stack(), vec![LockId::PoolState]);
        }
        assert!(held_stack().is_empty());
    }

    #[test]
    fn publish_is_idempotent_on_no_change() {
        publish_metrics();
        publish_metrics(); // second call publishes zero deltas
    }
}
