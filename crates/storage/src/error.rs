//! Storage-layer error type.

use crate::page::PageId;
use std::fmt;

/// Errors surfaced by the storage manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Every buffer frame is pinned; no victim can be evicted.
    BufferPoolFull,
    /// A page id referenced a file or page that does not exist.
    InvalidPage(PageId),
    /// An OID referenced a slot that does not exist or was deleted.
    InvalidOid(u64),
    /// A record was too large for the requested operation.
    RecordTooLarge { size: usize },
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// Tuple bytes failed to decode.
    Corrupt(&'static str),
    /// A read returned bytes whose checksum does not match what was
    /// written (torn / bit-rotted page). Not retryable: the stored copy
    /// itself is damaged.
    Corruption(PageId),
    /// A read failed transiently (injected fault). Retryable.
    TransientRead(PageId),
    /// A write failed transiently (injected fault). Retryable.
    TransientWrite(PageId),
    /// The device is out of space; page allocation failed. Recoverable by
    /// shedding load (smaller spill footprint), not by retrying.
    DiskFull { file: u32 },
    /// A bounded retry loop gave up on a transient fault.
    RetriesExhausted(PageId),
    /// The simulated process died: a deterministic crash point poisoned
    /// the disk handle, and every operation on it fails until the handle
    /// is surrendered to [`crate::Db::recover`]. Not retryable — a dead
    /// process cannot retry anything.
    Crashed,
}

impl StorageError {
    /// True for faults that a bounded, deterministic retry may absorb.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StorageError::TransientRead(_) | StorageError::TransientWrite(_)
        )
    }

    /// True for out-of-space conditions, which callers handle by degrading
    /// (fewer pages in flight), never by retrying the same plan.
    pub fn is_disk_full(&self) -> bool {
        matches!(self, StorageError::DiskFull { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BufferPoolFull => {
                write!(f, "buffer pool exhausted: all frames pinned")
            }
            StorageError::InvalidPage(pid) => write!(f, "invalid page reference {pid:?}"),
            StorageError::InvalidOid(oid) => write!(f, "invalid OID {oid:#x}"),
            StorageError::RecordTooLarge { size } => {
                write!(f, "record of {size} bytes exceeds storable limit")
            }
            StorageError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            StorageError::Corrupt(what) => write!(f, "corrupt on-page data: {what}"),
            StorageError::Corruption(pid) => {
                write!(
                    f,
                    "page checksum mismatch on {pid:?}: stored copy is damaged"
                )
            }
            StorageError::TransientRead(pid) => write!(f, "transient read fault on {pid:?}"),
            StorageError::TransientWrite(pid) => write!(f, "transient write fault on {pid:?}"),
            StorageError::DiskFull { file } => {
                write!(f, "device out of space allocating in file {file}")
            }
            StorageError::RetriesExhausted(pid) => {
                write!(
                    f,
                    "transient fault on {pid:?} persisted past the retry budget"
                )
            }
            StorageError::Crashed => {
                write!(f, "simulated crash: disk handle is poisoned")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias used across the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::FileId;

    #[test]
    fn transient_classification() {
        let pid = PageId::new(FileId(0), 3);
        assert!(StorageError::TransientRead(pid).is_transient());
        assert!(StorageError::TransientWrite(pid).is_transient());
        assert!(!StorageError::Corruption(pid).is_transient());
        assert!(!StorageError::DiskFull { file: 0 }.is_transient());
        assert!(!StorageError::RetriesExhausted(pid).is_transient());
        assert!(!StorageError::BufferPoolFull.is_transient());
        assert!(!StorageError::Crashed.is_transient());
    }

    #[test]
    fn disk_full_classification() {
        assert!(StorageError::DiskFull { file: 7 }.is_disk_full());
        assert!(!StorageError::BufferPoolFull.is_disk_full());
        assert!(!StorageError::Crashed.is_disk_full());
    }
}
