//! Storage-layer error type.

use crate::page::PageId;
use std::fmt;

/// Errors surfaced by the storage manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Every buffer frame is pinned; no victim can be evicted.
    BufferPoolFull,
    /// A page id referenced a file or page that does not exist.
    InvalidPage(PageId),
    /// An OID referenced a slot that does not exist or was deleted.
    InvalidOid(u64),
    /// A record was too large for the requested operation.
    RecordTooLarge { size: usize },
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// Tuple bytes failed to decode.
    Corrupt(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BufferPoolFull => {
                write!(f, "buffer pool exhausted: all frames pinned")
            }
            StorageError::InvalidPage(pid) => write!(f, "invalid page reference {pid:?}"),
            StorageError::InvalidOid(oid) => write!(f, "invalid OID {oid:#x}"),
            StorageError::RecordTooLarge { size } => {
                write!(f, "record of {size} bytes exceeds storable limit")
            }
            StorageError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            StorageError::Corrupt(what) => write!(f, "corrupt on-page data: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias used across the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;
