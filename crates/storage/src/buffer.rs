//! The buffer pool.
//!
//! A pin/unpin buffer manager with clock (second-chance) replacement, sized
//! in bytes like the paper's 2/8/24 MB pools. Two behaviours from the
//! paper's SHORE description are modeled explicitly:
//!
//! * **Sorted write-behind** (§4.6): "Whenever a dirty page has to be
//!   flushed to the disk, the storage manager forms a sorted list of all
//!   the dirty pages in the buffer pool, and tries to find pages that are
//!   consecutive on the disk. These pages are then written to the disk."
//!   With [`BufferPool::sorted_flush`] enabled (the default), evicting one
//!   dirty page writes *all* currently-dirty unpinned pages in ascending
//!   physical order, which the simulated disk rewards with fewer seeks.
//!   Disable it to reproduce the naive single-victim policy in ablations.
//! * **Dirty hand-off between phases**: counters are never reset between
//!   join components, so "every component starts out with some dirty pages
//!   left behind in the buffer pool by the previous component" (§4.6) holds
//!   here too.
//!
//! The pool is single-threaded; guards ([`PageRef`], [`PageMut`]) unpin on
//! drop. Pinning the same page mutably while any other guard for it is
//! alive is a caller bug and panics.

use crate::disk::{DiskStats, SimDisk};
use crate::error::{StorageError, StorageResult};
use crate::fault::RetryPolicy;
use crate::journal::{Journal, JournalRecord};
use crate::page::{zeroed_page, FileId, PageBuf, PageId, PAGE_SIZE};
use pbsm_obs as obs;
use std::cell::{Cell, Ref, RefCell, RefMut};
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// Buffer-pool hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests satisfied without disk I/O.
    pub hits: u64,
    /// Page requests that had to read from disk.
    pub misses: u64,
    /// Victim evictions performed.
    pub evictions: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
}

struct Frame {
    data: PageBuf,
}

#[derive(Clone, Copy)]
struct FrameMeta {
    page: Option<PageId>,
    dirty: bool,
    pin: u32,
    referenced: bool,
}

/// Observability mirrors of [`PoolStats`] (`storage.pool.*`).
///
/// The pin path is the hottest loop in the system — one hit per page
/// touch — so the mirrors are *deferred*: each event is a plain `Cell`
/// add here, and [`obs::FlushMetrics`] drains the cells into the shared
/// registry at every span boundary and read point. Span deltas come out
/// identical to eager counting.
struct PoolCounters {
    pending_hits: Cell<u64>,
    pending_misses: Cell<u64>,
    pending_evictions: Cell<u64>,
    pending_writebacks: Cell<u64>,
    hits: obs::Counter,
    misses: obs::Counter,
    evictions: obs::Counter,
    writebacks: obs::Counter,
    /// Mirror of the page-table size, published as the
    /// `storage.pool.occupied` gauge only when it moved since the last
    /// flush. Maintained at every map mutation (miss/evict/clear/drop
    /// paths — never the per-touch hit path).
    occupied: Cell<u64>,
    occupied_published: Cell<u64>,
    occupied_gauge: obs::Gauge,
}

impl PoolCounters {
    fn new() -> Rc<Self> {
        let counters = Rc::new(PoolCounters {
            pending_hits: Cell::new(0),
            pending_misses: Cell::new(0),
            pending_evictions: Cell::new(0),
            pending_writebacks: Cell::new(0),
            hits: obs::counter("storage.pool.hits"),
            misses: obs::counter("storage.pool.misses"),
            evictions: obs::counter("storage.pool.evictions"),
            writebacks: obs::counter("storage.pool.writebacks"),
            occupied: Cell::new(0),
            occupied_published: Cell::new(0),
            occupied_gauge: obs::gauge("storage.pool.occupied"),
        });
        let weak = Rc::downgrade(&counters);
        let weak: std::rc::Weak<dyn obs::FlushMetrics> = weak;
        obs::register_flusher(weak);
        counters
    }
}

impl Drop for PoolCounters {
    fn drop(&mut self) {
        // The pool is gone, so its occupancy is zero; publish that so
        // the gauge's post-drop baseline is exact (leak-sentinel
        // contract: gauges return to baseline when the Db is dropped).
        self.occupied_gauge.set(0);
        self.occupied_published.set(0);
    }
}

impl obs::FlushMetrics for PoolCounters {
    fn flush_metrics(&self) {
        for (pending, counter) in [
            (&self.pending_hits, self.hits),
            (&self.pending_misses, self.misses),
            (&self.pending_evictions, self.evictions),
            (&self.pending_writebacks, self.writebacks),
        ] {
            let n = pending.take();
            if n > 0 {
                counter.add(n);
            }
        }
        let occupied = self.occupied.get();
        if occupied != self.occupied_published.get() {
            self.occupied_gauge.set(occupied);
            self.occupied_published.set(occupied);
        }
    }
}

struct State {
    /// Page table. A `BTreeMap` so every whole-table walk (`clear_cache`,
    /// `drop_file`) runs in `PageId` order by construction — frame-reuse
    /// order can never drift with a hasher change (the PR 2 incident).
    map: BTreeMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    free: Vec<usize>,
    hand: usize,
    stats: PoolStats,
    counters: Rc<PoolCounters>,
}

/// The buffer pool. Owns the simulated disk: all page I/O flows through
/// here so the disk counters reflect actual buffer misses and write-backs.
pub struct BufferPool {
    frames: Vec<RefCell<Frame>>,
    state: RefCell<State>,
    disk: RefCell<SimDisk>,
    sorted_flush: Cell<bool>,
    /// Transient-fault retry budget. Every page transfer funnels through
    /// [`BufferPool::with_retry`], so this is the *only* place transient
    /// recovery happens.
    retry: Cell<RetryPolicy>,
    /// Intent journal, when the database opted into crash consistency
    /// (`DbConfig::journal`). `None` — the default — adds no I/O, no file
    /// ids, and no counters, keeping the gated benchmarks byte-identical.
    journal: RefCell<Option<Journal>>,
}

impl BufferPool {
    /// Creates a pool of `bytes / PAGE_SIZE` frames (at least 8) over
    /// `disk`.
    pub fn new(bytes: usize, disk: SimDisk) -> Self {
        let nframes = (bytes / PAGE_SIZE).max(8);
        let frames = (0..nframes)
            .map(|_| {
                RefCell::new(Frame {
                    data: zeroed_page(),
                })
            })
            .collect();
        let meta = vec![
            FrameMeta {
                page: None,
                dirty: false,
                pin: 0,
                referenced: false
            };
            nframes
        ];
        obs::gauge("storage.pool.frames").set(nframes as u64);
        BufferPool {
            frames,
            state: RefCell::new(State {
                map: BTreeMap::new(),
                meta,
                free: (0..nframes).rev().collect(),
                hand: 0,
                stats: PoolStats::default(),
                counters: PoolCounters::new(),
            }),
            disk: RefCell::new(disk),
            sorted_flush: Cell::new(true),
            retry: Cell::new(RetryPolicy::default()),
            journal: RefCell::new(None),
        }
    }

    /// Hands the pool the intent journal created by `Db::new` /
    /// `Db::recover`. From here on every intent-tracked file operation is
    /// journaled.
    pub fn install_journal(&self, journal: Journal) {
        *self.journal.borrow_mut() = Some(journal);
    }

    /// True when an intent journal is installed.
    pub fn journal_enabled(&self) -> bool {
        self.journal.borrow().is_some()
    }

    /// The journal's file id, when installed.
    pub fn journal_file(&self) -> Option<FileId> {
        self.journal.borrow().as_ref().map(|j| j.file_id())
    }

    /// Open journal intents: temp files with a journaled `TempCreated`
    /// and no terminal record yet. 0 when no journal is installed.
    pub fn journal_open_intents(&self) -> u64 {
        self.journal
            .borrow()
            .as_ref()
            .map_or(0, Journal::open_intents)
    }

    /// Appends a record to the intent journal (durable on return). A
    /// no-op `Ok` when no journal is installed, so callers need not
    /// branch on the mode.
    pub fn journal_append(&self, rec: JournalRecord) -> StorageResult<()> {
        match self.journal.borrow_mut().as_mut() {
            Some(j) => j.append(&mut self.disk.borrow_mut(), rec, self.retry.get()),
            None => Ok(()),
        }
    }

    /// Creates a file under the journal's intent protocol: the
    /// `TempCreated` intent is durable before the caller sees the id.
    /// Until [`BufferPool::commit_intent`] the file is garbage after a
    /// crash — recovery reclaims it. Pair with `commit_intent` or
    /// [`BufferPool::abort_intent`].
    pub fn begin_intent(&self) -> StorageResult<FileId> {
        // pbsm-lint: allow(resource-pairing, reason = "this IS the journaled creation primitive; ownership passes to the caller, who pairs it with commit_intent/abort_intent")
        let file = self.disk.borrow_mut().create_file();
        self.journal_append(JournalRecord::TempCreated { file })?;
        Ok(file)
    }

    /// Makes `file` durable: flushes and syncs its dirty pages, then
    /// journals the `Committed` intent. After a crash, recovery keeps
    /// committed files and reclaims everything else.
    pub fn commit_intent(&self, file: FileId) -> StorageResult<()> {
        self.flush_file(file)?;
        self.journal_append(JournalRecord::Committed { file })
    }

    /// Releases a file created by [`BufferPool::begin_intent`] without
    /// committing it.
    pub fn abort_intent(&self, file: FileId) {
        self.drop_file(file);
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Enables or disables SHORE-style sorted write-behind.
    pub fn set_sorted_flush(&self, enabled: bool) {
        self.sorted_flush.set(enabled);
    }

    /// Sets the transient-fault retry budget.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.retry.set(policy);
    }

    /// The retry budget in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry.get()
    }

    /// Diagnostic frame census for tests and invariant checks:
    /// `(free frames, pinned frames, mapped pages)`. Every frame is
    /// either on the free list or mapped, so `free + mapped == frames`
    /// whenever no I/O is in flight.
    pub fn frame_census(&self) -> (usize, usize, usize) {
        let st = self.state.borrow();
        let pinned = st.meta.iter().filter(|m| m.pin > 0).count();
        (st.free.len(), pinned, st.map.len())
    }

    /// The free list, top-of-stack last (frames are reused by `pop`).
    /// The canonical cold-pool order is descending, so reuse is by
    /// ascending frame index.
    pub fn free_list(&self) -> Vec<usize> {
        self.state.borrow().free.clone()
    }

    /// Runs one page transfer under the bounded deterministic retry
    /// policy. Transient faults are retried up to the budget and then
    /// surfaced as [`StorageError::RetriesExhausted`]; every other error
    /// passes through untouched.
    fn with_retry(
        policy: RetryPolicy,
        pid: PageId,
        mut op: impl FnMut() -> StorageResult<()>,
    ) -> StorageResult<()> {
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(()) => {
                    if attempt > 1 {
                        obs::cached_counter!("storage.retry.absorbed").incr();
                        obs::flight::record(
                            obs::flight::EventKind::RetryAbsorbed,
                            "page transfer",
                            pid.page_no as u64,
                            attempt as u64,
                        );
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() => {
                    obs::cached_counter!("storage.retry.attempts").incr();
                    obs::flight::record(
                        obs::flight::EventKind::RetryAttempt,
                        "page transfer",
                        pid.page_no as u64,
                        attempt as u64,
                    );
                    if attempt >= policy.max_attempts.max(1) {
                        obs::cached_counter!("storage.retry.exhausted").incr();
                        obs::flight::record(
                            obs::flight::EventKind::RetryExhausted,
                            "page transfer",
                            pid.page_no as u64,
                            attempt as u64,
                        );
                        return Err(StorageError::RetriesExhausted(pid));
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Buffer counters so far.
    pub fn stats(&self) -> PoolStats {
        self.state.borrow().stats
    }

    /// Disk counters so far (reads/writes/seeks/modeled ms).
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.borrow().stats()
    }

    /// Direct (immutable) access to the underlying disk.
    pub fn disk(&self) -> Ref<'_, SimDisk> {
        self.disk.borrow()
    }

    /// Direct (mutable) access to the underlying disk, e.g. for file
    /// creation.
    pub fn disk_mut(&self) -> RefMut<'_, SimDisk> {
        self.disk.borrow_mut()
    }

    /// Picks an unpinned victim frame with the clock algorithm, flushing it
    /// (and, under sorted flush, every other dirty unpinned page) if dirty.
    /// The caller must already hold the state borrow and passes it in.
    fn evict_victim(&self, st: &mut State) -> StorageResult<usize> {
        if let Some(idx) = st.free.pop() {
            return Ok(idx);
        }
        let n = self.frames.len();
        let mut victim = None;
        for _ in 0..2 * n {
            let idx = st.hand;
            st.hand = (st.hand + 1) % n;
            let m = &mut st.meta[idx];
            if m.pin > 0 {
                continue;
            }
            if m.referenced {
                m.referenced = false;
                continue;
            }
            victim = Some(idx);
            break;
        }
        let victim = victim.ok_or(StorageError::BufferPoolFull)?;
        if st.meta[victim].dirty {
            self.flush_dirty(st, victim)?;
        }
        st.stats.evictions += 1;
        obs::bump(&st.counters.pending_evictions);
        if let Some(old) = st.meta[victim].page.take() {
            st.map.remove(&old);
            st.counters.occupied.set(st.map.len() as u64);
        }
        st.meta[victim].dirty = false;
        Ok(victim)
    }

    /// Writes back the victim — and, under sorted flush, all other dirty
    /// unpinned pages, in ascending physical order.
    fn flush_dirty(&self, st: &mut State, victim: usize) -> StorageResult<()> {
        let mut batch: Vec<(PageId, usize)> = Vec::new();
        if self.sorted_flush.get() {
            for (idx, m) in st.meta.iter().enumerate() {
                if m.dirty && m.pin == 0 {
                    if let Some(pid) = m.page {
                        batch.push((pid, idx));
                    }
                }
            }
            batch.sort_unstable();
        } else if let Some(pid) = st.meta[victim].page {
            batch.push((pid, victim));
        }
        let mut disk = self.disk.borrow_mut();
        for (pid, idx) in batch {
            let frame = self.frames[idx].borrow();
            Self::with_retry(self.retry.get(), pid, || disk.write_page(pid, &frame.data))?;
            st.meta[idx].dirty = false;
            st.stats.writebacks += 1;
            obs::bump(&st.counters.pending_writebacks);
        }
        Ok(())
    }

    /// Locates `pid` in the pool, reading it from disk on a miss. Returns
    /// the frame index with the pin already taken.
    fn pin_frame(&self, pid: PageId, read_from_disk: bool) -> StorageResult<usize> {
        let mut st = self.state.borrow_mut();
        if let Some(&idx) = st.map.get(&pid) {
            st.stats.hits += 1;
            obs::bump(&st.counters.pending_hits);
            let m = &mut st.meta[idx];
            m.pin += 1;
            m.referenced = true;
            return Ok(idx);
        }
        st.stats.misses += 1;
        obs::bump(&st.counters.pending_misses);
        let idx = self.evict_victim(&mut st)?;
        {
            let mut frame = self.frames[idx].borrow_mut();
            if read_from_disk {
                let read = Self::with_retry(self.retry.get(), pid, || {
                    self.disk.borrow_mut().read_page(pid, &mut frame.data)
                });
                if let Err(e) = read {
                    // The frame was unmapped by the eviction; return it
                    // to the free list or it would leak until shutdown.
                    st.free.push(idx);
                    return Err(e);
                }
            } else {
                frame.data.fill(0);
            }
        }
        st.map.insert(pid, idx);
        st.counters.occupied.set(st.map.len() as u64);
        st.meta[idx] = FrameMeta {
            page: Some(pid),
            dirty: !read_from_disk,
            pin: 1,
            referenced: true,
        };
        Ok(idx)
    }

    /// Pins `pid` for reading.
    pub fn get(&self, pid: PageId) -> StorageResult<PageRef<'_>> {
        let idx = self.pin_frame(pid, true)?;
        Ok(PageRef {
            pool: self,
            idx,
            frame: self.frames[idx].borrow(),
        })
    }

    /// Pins `pid` for writing; the page is marked dirty.
    pub fn get_mut(&self, pid: PageId) -> StorageResult<PageMut<'_>> {
        let idx = self.pin_frame(pid, true)?;
        self.state.borrow_mut().meta[idx].dirty = true;
        Ok(PageMut {
            pool: self,
            idx,
            frame: self.frames[idx].borrow_mut(),
        })
    }

    /// Allocates a fresh page in `file` and pins it for writing without a
    /// disk read (it is known-zero). This is how partition files and index
    /// builds append pages.
    pub fn new_page(&self, file: FileId) -> StorageResult<(PageId, PageMut<'_>)> {
        let pid = self.disk.borrow_mut().allocate_page(file)?;
        let idx = self.pin_frame(pid, false)?;
        self.state.borrow_mut().meta[idx].dirty = true;
        Ok((
            pid,
            PageMut {
                pool: self,
                idx,
                frame: self.frames[idx].borrow_mut(),
            },
        ))
    }

    /// Writes every dirty page back to disk in sorted order.
    pub fn flush_all(&self) -> StorageResult<()> {
        let mut st = self.state.borrow_mut();
        let mut batch: Vec<(PageId, usize)> = Vec::new();
        for (idx, m) in st.meta.iter().enumerate() {
            if m.dirty {
                if let Some(pid) = m.page {
                    assert_eq!(m.pin, 0, "flush_all with pinned dirty page {pid:?}");
                    batch.push((pid, idx));
                }
            }
        }
        batch.sort_unstable();
        let mut disk = self.disk.borrow_mut();
        for (pid, idx) in batch {
            let frame = self.frames[idx].borrow();
            Self::with_retry(self.retry.get(), pid, || disk.write_page(pid, &frame.data))?;
            st.meta[idx].dirty = false;
            st.stats.writebacks += 1;
            obs::bump(&st.counters.pending_writebacks);
        }
        Ok(())
    }

    /// Writes `file`'s dirty pages back in sorted order and syncs the
    /// device: on return the file's contents are crash-durable (pending
    /// torn writes, if any, are confirmed). This is the durability half
    /// of a commit or checkpoint; the journal record is the other half.
    pub fn flush_file(&self, file: FileId) -> StorageResult<()> {
        let mut st = self.state.borrow_mut();
        let mut batch: Vec<(PageId, usize)> = Vec::new();
        for (idx, m) in st.meta.iter().enumerate() {
            if m.dirty {
                if let Some(pid) = m.page {
                    if pid.file == file {
                        assert_eq!(m.pin, 0, "flush_file with pinned dirty page {pid:?}");
                        batch.push((pid, idx));
                    }
                }
            }
        }
        batch.sort_unstable();
        let mut disk = self.disk.borrow_mut();
        for (pid, idx) in batch {
            let frame = self.frames[idx].borrow();
            Self::with_retry(self.retry.get(), pid, || disk.write_page(pid, &frame.data))?;
            st.meta[idx].dirty = false;
            st.stats.writebacks += 1;
            obs::bump(&st.counters.pending_writebacks);
        }
        disk.sync();
        Ok(())
    }

    /// Flushes all dirty pages, then drops every cached mapping, returning
    /// the pool to a cold state. Benchmarks call this between phases so
    /// each measured run starts with an empty cache, like a fresh process
    /// in the paper's testbed. Panics if any page is pinned.
    pub fn clear_cache(&self) -> StorageResult<()> {
        self.flush_all()?;
        let mut st = self.state.borrow_mut();
        let entries: Vec<(PageId, usize)> = std::mem::take(&mut st.map).into_iter().collect();
        st.counters.occupied.set(0);
        for (pid, idx) in entries {
            assert_eq!(st.meta[idx].pin, 0, "clear_cache with pinned page {pid:?}");
            st.meta[idx] = FrameMeta {
                page: None,
                dirty: false,
                pin: 0,
                referenced: false,
            };
            st.free.push(idx);
        }
        // Restore the canonical cold-pool free order (descending index)
        // so frame allocation — and hence the I/O pattern — is identical
        // run to run regardless of which pages happened to be cached.
        st.free.sort_unstable_by(|a, b| b.cmp(a));
        Ok(())
    }

    /// Discards all cached pages of `file` (without write-back) and frees
    /// it on disk. Panics if any of its pages are pinned.
    pub fn drop_file(&self, file: FileId) {
        let mut st = self.state.borrow_mut();
        let mut doomed: Vec<(PageId, usize)> = st
            .map
            .iter()
            .filter(|(pid, _)| pid.file == file)
            .map(|(p, i)| (*p, *i))
            .collect();
        // Free lowest frame index last so reuse order is deterministic
        // no matter which of the file's pages were resident.
        doomed.sort_unstable_by_key(|d| std::cmp::Reverse(d.1));
        for (pid, idx) in doomed {
            assert_eq!(st.meta[idx].pin, 0, "drop_file with pinned page {pid:?}");
            st.map.remove(&pid);
            st.meta[idx] = FrameMeta {
                page: None,
                dirty: false,
                pin: 0,
                referenced: false,
            };
            st.free.push(idx);
        }
        st.counters.occupied.set(st.map.len() as u64);
        drop(st);
        self.disk.borrow_mut().drop_file(file);
        // Best-effort: a failed (e.g. crashed) drop record is safe — the
        // file's pages are gone or recovery will reclaim them; either way
        // nothing leaks. Never journal a drop of the journal itself.
        if self.journal_file() != Some(file) {
            let _ = self.journal_append(JournalRecord::TempDropped { file });
        }
    }

    /// Tears the pool down, discarding every cached (possibly dirty)
    /// frame, and returns the disk — exactly what a process crash leaves
    /// behind. The crash harness feeds the result to `Db::recover`.
    pub fn into_disk(self) -> SimDisk {
        self.disk.into_inner()
    }

    fn unpin(&self, idx: usize) {
        let mut st = self.state.borrow_mut();
        let m = &mut st.meta[idx];
        debug_assert!(m.pin > 0);
        m.pin -= 1;
    }
}

/// A read pin on a page. Derefs to the page bytes; unpins on drop.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    idx: usize,
    frame: Ref<'a, Frame>,
}

impl Deref for PageRef<'_> {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.frame.data
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx);
    }
}

/// A write pin on a page. Derefs to the page bytes; unpins on drop. The
/// page was marked dirty when the guard was created.
pub struct PageMut<'a> {
    pool: &'a BufferPool,
    idx: usize,
    frame: RefMut<'a, Frame>,
}

impl Deref for PageMut<'_> {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.frame.data
    }
}

impl DerefMut for PageMut<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.frame.data
    }
}

impl Drop for PageMut<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskModel;

    fn pool_with(nframes: usize) -> (BufferPool, FileId) {
        let mut disk = SimDisk::new(DiskModel::default());
        let f = disk.create_file();
        (BufferPool::new(nframes * PAGE_SIZE, disk), f)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (pool, f) = pool_with(8);
        let pid = {
            let (pid, mut page) = pool.new_page(f).unwrap();
            page[0] = 42;
            page[PAGE_SIZE - 1] = 24;
            pid
        };
        let page = pool.get(pid).unwrap();
        assert_eq!(page[0], 42);
        assert_eq!(page[PAGE_SIZE - 1], 24);
        // Fresh page never touched disk: 0 reads so far.
        assert_eq!(pool.disk_stats().reads, 0);
    }

    #[test]
    fn eviction_writes_back_and_rereads() {
        let (pool, f) = pool_with(8);
        let mut pids = Vec::new();
        for i in 0..20u8 {
            let (pid, mut page) = pool.new_page(f).unwrap();
            page[0] = i;
            pids.push(pid);
        }
        // Early pages were evicted (8 frames, 20 pages) and written out.
        assert!(pool.disk_stats().writes > 0);
        for (i, pid) in pids.iter().enumerate() {
            let page = pool.get(*pid).unwrap();
            assert_eq!(page[0], i as u8, "page {i}");
        }
        assert!(pool.disk_stats().reads > 0);
    }

    #[test]
    fn all_pinned_errors() {
        let (pool, f) = pool_with(8);
        let mut guards = Vec::new();
        for _ in 0..8 {
            let (pid, g) = pool.new_page(f).unwrap();
            let _ = pid;
            guards.push(g);
        }
        let err = pool.new_page(f).map(|_| ()).unwrap_err();
        assert_eq!(err, StorageError::BufferPoolFull);
        drop(guards);
        assert!(pool.new_page(f).is_ok());
    }

    #[test]
    fn hit_and_miss_counters() {
        let (pool, f) = pool_with(8);
        let (pid, g) = pool.new_page(f).unwrap();
        drop(g);
        let _ = pool.get(pid).unwrap();
        let _ = pool.get(pid).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1); // the new_page install
    }

    #[test]
    fn sorted_flush_reduces_seeks() {
        // Dirty 16 pages in reverse order, then force eviction; sorted
        // flush should write them ascending → few seeks.
        let run = |sorted: bool| -> u64 {
            let (pool, f) = pool_with(16);
            pool.set_sorted_flush(sorted);
            let mut pids = Vec::new();
            for _ in 0..16 {
                let (pid, _g) = pool.new_page(f).unwrap();
                pids.push(pid);
            }
            // Touch in reverse so clock order ≠ disk order.
            for pid in pids.iter().rev() {
                let mut g = pool.get_mut(*pid).unwrap();
                g[1] = 1;
            }
            let before = pool.disk_stats().seeks;
            pool.flush_all().unwrap();
            pool.disk_stats().seeks - before
        };
        let sorted_seeks = run(true);
        // flush_all always sorts; verify the write-behind on eviction too.
        assert!(sorted_seeks <= 2, "sorted flush used {sorted_seeks} seeks");
    }

    #[test]
    fn eviction_sorted_writeback_batches_dirty_pages() {
        let (pool, f) = pool_with(8);
        // Fill all 8 frames dirty.
        let mut pids = Vec::new();
        for _ in 0..8 {
            let (pid, _g) = pool.new_page(f).unwrap();
            pids.push(pid);
        }
        // Trigger one eviction; sorted write-behind flushes all 8.
        let (_pid9, _g) = pool.new_page(f).unwrap();
        assert_eq!(pool.stats().writebacks, 8);
        // Their writes were sequential: seeks stay small.
        assert!(pool.disk_stats().seeks <= 2);
    }

    #[test]
    fn clear_cache_flushes_and_cools() {
        let (pool, f) = pool_with(8);
        let (pid, g) = pool.new_page(f).unwrap();
        drop(g);
        pool.clear_cache().unwrap();
        assert_eq!(pool.disk_stats().writes, 1);
        let misses_before = pool.stats().misses;
        let _ = pool.get(pid).unwrap();
        assert_eq!(
            pool.stats().misses,
            misses_before + 1,
            "cache should be cold"
        );
    }

    #[test]
    fn drop_file_discards_dirty_pages() {
        let (pool, f) = pool_with(8);
        let (_pid, g) = pool.new_page(f).unwrap();
        drop(g);
        pool.drop_file(f);
        assert_eq!(pool.disk_stats().writes, 0);
        assert_eq!(pool.disk().num_pages(f), 0);
    }

    #[test]
    fn flush_file_flushes_only_that_file() {
        let mut disk = SimDisk::new(DiskModel::default());
        let f1 = disk.create_file();
        let f2 = disk.create_file();
        let pool = BufferPool::new(8 * PAGE_SIZE, disk);
        let (_p1, g1) = pool.new_page(f1).unwrap();
        drop(g1);
        let (_p2, g2) = pool.new_page(f2).unwrap();
        drop(g2);
        pool.flush_file(f1).unwrap();
        assert_eq!(pool.disk_stats().writes, 1);
        pool.flush_all().unwrap();
        assert_eq!(pool.disk_stats().writes, 2);
    }

    #[test]
    fn intent_protocol_journals_lifecycle() {
        let mut disk = SimDisk::new(DiskModel::default());
        let j = Journal::create(&mut disk);
        let pool = BufferPool::new(8 * PAGE_SIZE, disk);
        pool.install_journal(j);
        assert!(pool.journal_enabled());
        let f = pool.begin_intent().unwrap();
        let (_pid, g) = pool.new_page(f).unwrap();
        drop(g);
        pool.commit_intent(f).unwrap();
        let f2 = pool.begin_intent().unwrap();
        pool.abort_intent(f2);
        let mut disk = pool.into_disk();
        let recs = Journal::scan(&mut disk, FileId(0)).unwrap();
        assert_eq!(
            recs,
            vec![
                JournalRecord::TempCreated { file: f },
                JournalRecord::Committed { file: f },
                JournalRecord::TempCreated { file: f2 },
                JournalRecord::TempDropped { file: f2 },
            ]
        );
    }

    #[test]
    fn transient_read_faults_absorbed_by_retry() {
        let (pool, f) = pool_with(8);
        let pid = {
            let (pid, mut g) = pool.new_page(f).unwrap();
            g[0] = 5;
            pid
        };
        pool.clear_cache().unwrap();
        pool.disk_mut().set_faults(Some(crate::fault::FaultConfig {
            seed: 2,
            read_transient_ppm: 300_000, // 30% per attempt, bursts of ≤ 2
            max_transient_burst: 2,
            ..Default::default()
        }));
        // Every miss re-reads from disk. Most faults are absorbed by the
        // 4-attempt budget; back-to-back fresh draws can still chain past
        // it, which must surface as the typed error, never a panic.
        let mut successes = 0;
        for _ in 0..50 {
            match pool.get(pid) {
                Ok(g) => {
                    assert_eq!(g[0], 5);
                    successes += 1;
                }
                Err(e) => assert_eq!(e, StorageError::RetriesExhausted(pid)),
            }
            pool.clear_cache().unwrap();
        }
        assert!(successes > 40, "retry should absorb most faults");
        assert!(pool.disk().fault_tally().transient_reads > 0);
    }

    #[test]
    fn exhausted_retries_surface_typed_error_without_leaking_frames() {
        let (pool, f) = pool_with(8);
        let pid = {
            let (pid, _g) = pool.new_page(f).unwrap();
            pid
        };
        pool.clear_cache().unwrap();
        pool.set_retry_policy(RetryPolicy { max_attempts: 1 });
        pool.disk_mut().set_faults(Some(crate::fault::FaultConfig {
            seed: 9,
            read_transient_ppm: 1_000_000,
            max_transient_burst: 1,
            ..Default::default()
        }));
        let err = pool.get(pid).map(|_| ()).unwrap_err();
        assert_eq!(err, StorageError::RetriesExhausted(pid));
        // The frame grabbed for the failed read went back to the free
        // list: all frames accounted for, none pinned.
        let (free, pinned, mapped) = pool.frame_census();
        assert_eq!(free + mapped, pool.num_frames());
        assert_eq!(pinned, 0);
        // With faults cleared the same page reads fine.
        pool.disk_mut().set_faults(None);
        assert!(pool.get(pid).is_ok());
    }

    #[test]
    fn corruption_propagates_from_miss() {
        let (pool, f) = pool_with(8);
        pool.disk_mut().set_faults(Some(crate::fault::FaultConfig {
            seed: 4,
            torn_write_ppm: 1_000_000,
            ..Default::default()
        }));
        let pid = {
            let (pid, mut g) = pool.new_page(f).unwrap();
            // Fill the whole page: a tear reverts a 64-byte span to the
            // pre-write image (zeros here), so every span must differ for
            // the revert to be observable wherever it lands.
            g.fill(7);
            pid
        };
        pool.clear_cache().unwrap(); // torn write-back happens here
                                     // The tear is latent until a crash materializes it.
        {
            let mut disk = pool.disk_mut();
            disk.crash_now();
            disk.clear_crash();
            disk.set_faults(None);
        }
        let err = pool.get(pid).map(|_| ()).unwrap_err();
        assert_eq!(err, StorageError::Corruption(pid));
        let (free, pinned, mapped) = pool.frame_census();
        assert_eq!(free + mapped, pool.num_frames());
        assert_eq!(pinned, 0);
    }

    #[test]
    fn get_mut_marks_dirty() {
        let (pool, f) = pool_with(8);
        let (pid, g) = pool.new_page(f).unwrap();
        drop(g);
        pool.flush_all().unwrap();
        let w0 = pool.disk_stats().writes;
        {
            let mut g = pool.get_mut(pid).unwrap();
            g[3] = 3;
        }
        pool.flush_all().unwrap();
        assert_eq!(pool.disk_stats().writes, w0 + 1);
        // Clean page: nothing further to write.
        pool.flush_all().unwrap();
        assert_eq!(pool.disk_stats().writes, w0 + 1);
    }
}
