//! The buffer pool.
//!
//! A pin/unpin buffer manager sized in bytes like the paper's 2/8/24 MB
//! pools, shared across serving threads. Two behaviours from the paper's
//! SHORE description are modeled explicitly:
//!
//! * **Sorted write-behind** (§4.6): "Whenever a dirty page has to be
//!   flushed to the disk, the storage manager forms a sorted list of all
//!   the dirty pages in the buffer pool, and tries to find pages that are
//!   consecutive on the disk. These pages are then written to the disk."
//!   With [`BufferPool::sorted_flush`] enabled (the default), evicting one
//!   dirty page writes *all* currently-dirty unpinned pages in ascending
//!   physical order, which the simulated disk rewards with fewer seeks.
//!   Disable it to reproduce the naive single-victim policy in ablations.
//! * **Dirty hand-off between phases**: counters are never reset between
//!   join components, so "every component starts out with some dirty pages
//!   left behind in the buffer pool by the previous component" (§4.6) holds
//!   here too.
//!
//! # Concurrency
//!
//! The pool is safe to share across threads (`&BufferPool` is `Sync`):
//!
//! * One **frame-table mutex** ([`State`]) protects the page table, frame
//!   metadata, pin counts, free list, and the replacement structures.
//! * One **latch per frame** (`RwLock<Frame>`) protects the page bytes.
//!   [`PageRef`] holds a shared latch, [`PageMut`] an exclusive one.
//!
//! **Lock ordering** (the Snippet-1 contract): frame-table lock → frame
//! latch, never the reverse. The only place a latch is acquired while the
//! table lock is held is on frames with `pin == 0` (eviction write-back
//! and miss installs); the latch of an unpinned frame can only be held by
//! a guard that is mid-drop — past its unpin, holding no locks — so the
//! acquisition cannot deadlock. Guard drops unpin first and release the
//! latch after, which preserves the invariant "a held latch implies
//! `pin > 0` or a lock-free in-flight drop". The disk sits behind its own
//! mutex, only ever locked while the table lock is held (or alone), so
//! table → disk → latch and table → latch → disk cannot interleave across
//! threads.
//!
//! Pinning the same page mutably while the same *thread* already holds a
//! guard for it is a caller bug: it now self-deadlocks on the frame latch
//! where the old single-threaded pool panicked on a `RefCell` borrow.
//!
//! # Replacement
//!
//! Two selectable policies ([`ReplacementPolicy`], via
//! `DbConfig::replacement`): the paper-era **clock** (second chance) —
//! the default, byte-identical to the historical counter streams — and
//! **exact LRU** backed by an intrusive doubly-linked list threaded
//! through the frame table (Snippet-1 design: splice-to-MRU on every
//! touch, evict from the cold end, skipping pinned frames). The list is
//! maintained under both policies — O(1) per touch — so the policy can
//! be switched on a live pool.

use crate::disk::{DiskStats, SimDisk};
use crate::error::{StorageError, StorageResult};
use crate::fault::RetryPolicy;
use crate::journal::{Journal, JournalRecord};
use crate::lockcheck::{self, lock, LockId, Tracked};
use crate::page::{zeroed_page, FileId, PageBuf, PageId, PAGE_SIZE};
use pbsm_obs as obs;
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{
    Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError,
};

/// Buffer-pool hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests satisfied without disk I/O.
    pub hits: u64,
    /// Page requests that had to read from disk.
    pub misses: u64,
    /// Victim evictions performed.
    pub evictions: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
}

/// Victim-selection policy (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Clock / second-chance — the historical default; the gated
    /// deterministic counter streams are recorded under it.
    #[default]
    Clock,
    /// Exact LRU via the intrusive list: evict the least recently
    /// touched unpinned page.
    Lru,
}

struct Frame {
    data: PageBuf,
}

#[derive(Clone, Copy)]
struct FrameMeta {
    page: Option<PageId>,
    dirty: bool,
    pin: u32,
    referenced: bool,
}

/// Observability mirrors of [`PoolStats`] (`storage.pool.*`).
///
/// The pin path is the hottest loop in the system — one hit per page
/// touch — so the mirrors are *deferred*: each event is a relaxed atomic
/// add here, and [`obs::FlushMetrics`] drains the tallies into the
/// registering thread's registry at every span boundary and read point.
/// Span deltas come out identical to eager counting. Serving threads
/// drain their share through [`obs::take_metrics_delta`] instead.
struct PoolCounters {
    pending_hits: AtomicU64,
    pending_misses: AtomicU64,
    pending_evictions: AtomicU64,
    pending_writebacks: AtomicU64,
    pending_latch_shared: AtomicU64,
    pending_latch_exclusive: AtomicU64,
    pending_latch_contended: AtomicU64,
    hits: obs::Counter,
    misses: obs::Counter,
    evictions: obs::Counter,
    writebacks: obs::Counter,
    latch_shared: obs::Counter,
    latch_exclusive: obs::Counter,
    latch_contended: obs::Counter,
    /// Mirror of the page-table size, published as the
    /// `storage.pool.occupied` gauge only when it moved since the last
    /// flush. Maintained at every map mutation (miss/evict/clear/drop
    /// paths — never the per-touch hit path).
    occupied: AtomicU64,
    occupied_published: AtomicU64,
    occupied_gauge: obs::Gauge,
}

impl PoolCounters {
    fn new() -> Arc<Self> {
        let counters = Arc::new(PoolCounters {
            pending_hits: AtomicU64::new(0),
            pending_misses: AtomicU64::new(0),
            pending_evictions: AtomicU64::new(0),
            pending_writebacks: AtomicU64::new(0),
            pending_latch_shared: AtomicU64::new(0),
            pending_latch_exclusive: AtomicU64::new(0),
            pending_latch_contended: AtomicU64::new(0),
            hits: obs::counter("storage.pool.hits"),
            misses: obs::counter("storage.pool.misses"),
            evictions: obs::counter("storage.pool.evictions"),
            writebacks: obs::counter("storage.pool.writebacks"),
            latch_shared: obs::counter("storage.pool.latch.shared"),
            latch_exclusive: obs::counter("storage.pool.latch.exclusive"),
            latch_contended: obs::counter("storage.pool.latch.contended"),
            occupied: AtomicU64::new(0),
            occupied_published: AtomicU64::new(0),
            occupied_gauge: obs::gauge("storage.pool.occupied"),
        });
        let weak = Arc::downgrade(&counters);
        let weak: std::sync::Weak<dyn obs::FlushMetrics> = weak;
        obs::register_flusher(weak);
        counters
    }
}

impl Drop for PoolCounters {
    fn drop(&mut self) {
        // The pool is gone, so its occupancy is zero; publish that so
        // the gauge's post-drop baseline is exact (leak-sentinel
        // contract: gauges return to baseline when the Db is dropped).
        // Resolved by name, not the stored handle: handles index the
        // registering thread's registry and the drop may run anywhere.
        obs::gauge("storage.pool.occupied").set(0);
        self.occupied_published.store(0, Ordering::Relaxed);
    }
}

impl obs::FlushMetrics for PoolCounters {
    fn flush_metrics(&self) {
        for (pending, counter) in [
            (&self.pending_hits, self.hits),
            (&self.pending_misses, self.misses),
            (&self.pending_evictions, self.evictions),
            (&self.pending_writebacks, self.writebacks),
            (&self.pending_latch_shared, self.latch_shared),
            (&self.pending_latch_exclusive, self.latch_exclusive),
            (&self.pending_latch_contended, self.latch_contended),
        ] {
            let n = pending.swap(0, Ordering::Relaxed);
            if n > 0 {
                counter.add(n);
            }
        }
        let occupied = self.occupied.load(Ordering::Relaxed);
        if occupied != self.occupied_published.load(Ordering::Relaxed) {
            self.occupied_gauge.set(occupied);
            self.occupied_published.store(occupied, Ordering::Relaxed);
        }
    }
}

/// Sentinel for "no frame" in the intrusive LRU links.
const NIL: usize = usize::MAX;

struct State {
    /// Page table. A `BTreeMap` so every whole-table walk (`clear_cache`,
    /// `drop_file`) runs in `PageId` order by construction — frame-reuse
    /// order can never drift with a hasher change (the PR 2 incident).
    map: BTreeMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    free: Vec<usize>,
    hand: usize,
    policy: ReplacementPolicy,
    /// Intrusive exact-LRU list over *mapped* frames: `lru_head` is the
    /// coldest, `lru_tail` the most recently touched. Membership is
    /// exactly the page table — frames join on install, are spliced to
    /// the tail on every hit, and leave on unmap.
    lru_prev: Vec<usize>,
    lru_next: Vec<usize>,
    lru_head: usize,
    lru_tail: usize,
    stats: PoolStats,
}

impl State {
    fn lru_detach(&mut self, idx: usize) {
        let (p, n) = (self.lru_prev[idx], self.lru_next[idx]);
        if p == NIL {
            self.lru_head = n;
        } else {
            self.lru_next[p] = n;
        }
        if n == NIL {
            self.lru_tail = p;
        } else {
            self.lru_prev[n] = p;
        }
        self.lru_prev[idx] = NIL;
        self.lru_next[idx] = NIL;
    }

    fn lru_push_mru(&mut self, idx: usize) {
        self.lru_prev[idx] = self.lru_tail;
        self.lru_next[idx] = NIL;
        if self.lru_tail == NIL {
            self.lru_head = idx;
        } else {
            self.lru_next[self.lru_tail] = idx;
        }
        self.lru_tail = idx;
    }

    fn lru_touch(&mut self, idx: usize) {
        if self.lru_tail != idx {
            self.lru_detach(idx);
            self.lru_push_mru(idx);
        }
    }
}

/// The buffer pool. Owns the simulated disk: all page I/O flows through
/// here so the disk counters reflect actual buffer misses and write-backs.
pub struct BufferPool {
    frames: Vec<RwLock<Frame>>,
    state: Mutex<State>,
    counters: Arc<PoolCounters>,
    disk: Mutex<SimDisk>,
    sorted_flush: AtomicBool,
    /// Transient-fault retry budget. Every page transfer funnels through
    /// [`BufferPool::with_retry`], so this is the *only* place transient
    /// recovery happens.
    retry: Mutex<RetryPolicy>,
    /// Intent journal, when the database opted into crash consistency
    /// (`DbConfig::journal`). `None` — the default — adds no I/O, no file
    /// ids, and no counters, keeping the gated benchmarks byte-identical.
    journal: Mutex<Option<Journal>>,
}

impl BufferPool {
    /// Creates a pool of `bytes / PAGE_SIZE` frames (at least 8) over
    /// `disk`.
    pub fn new(bytes: usize, disk: SimDisk) -> Self {
        let nframes = (bytes / PAGE_SIZE).max(8);
        let frames = (0..nframes)
            .map(|_| {
                RwLock::new(Frame {
                    data: zeroed_page(),
                })
            })
            .collect();
        let meta = vec![
            FrameMeta {
                page: None,
                dirty: false,
                pin: 0,
                referenced: false
            };
            nframes
        ];
        obs::gauge("storage.pool.frames").set(nframes as u64);
        BufferPool {
            frames,
            state: Mutex::new(State {
                map: BTreeMap::new(),
                meta,
                free: (0..nframes).rev().collect(),
                hand: 0,
                policy: ReplacementPolicy::default(),
                lru_prev: vec![NIL; nframes],
                lru_next: vec![NIL; nframes],
                lru_head: NIL,
                lru_tail: NIL,
                stats: PoolStats::default(),
            }),
            counters: PoolCounters::new(),
            disk: Mutex::new(disk),
            sorted_flush: AtomicBool::new(true),
            retry: Mutex::new(RetryPolicy::default()),
            journal: Mutex::new(None),
        }
    }

    /// Hands the pool the intent journal created by `Db::new` /
    /// `Db::recover`. From here on every intent-tracked file operation is
    /// journaled.
    pub fn install_journal(&self, journal: Journal) {
        *lock(&self.journal, LockId::PoolJournal) = Some(journal);
    }

    /// True when an intent journal is installed.
    pub fn journal_enabled(&self) -> bool {
        lock(&self.journal, LockId::PoolJournal).is_some()
    }

    /// The journal's file id, when installed.
    pub fn journal_file(&self) -> Option<FileId> {
        lock(&self.journal, LockId::PoolJournal)
            .as_ref()
            .map(Journal::file_id)
    }

    /// Open journal intents: temp files with a journaled `TempCreated`
    /// and no terminal record yet. 0 when no journal is installed.
    pub fn journal_open_intents(&self) -> u64 {
        lock(&self.journal, LockId::PoolJournal)
            .as_ref()
            .map_or(0, Journal::open_intents)
    }

    /// Appends a record to the intent journal (durable on return). A
    /// no-op `Ok` when no journal is installed, so callers need not
    /// branch on the mode. Lock order: journal → disk; the caller must
    /// not hold the disk lock.
    pub fn journal_append(&self, rec: JournalRecord) -> StorageResult<()> {
        let retry = self.retry_policy();
        match lock(&self.journal, LockId::PoolJournal).as_mut() {
            Some(j) => j.append(&mut lock(&self.disk, LockId::PoolDisk), rec, retry),
            None => Ok(()),
        }
    }

    /// Creates a file under the journal's intent protocol: the
    /// `TempCreated` intent is durable before the caller sees the id.
    /// Until [`BufferPool::commit_intent`] the file is garbage after a
    /// crash — recovery reclaims it. Pair with `commit_intent` or
    /// [`BufferPool::abort_intent`].
    pub fn begin_intent(&self) -> StorageResult<FileId> {
        // pbsm-lint: allow(resource-pairing, reason = "this IS the journaled creation primitive; ownership passes to the caller, who pairs it with commit_intent/abort_intent")
        let file = lock(&self.disk, LockId::PoolDisk).create_file();
        self.journal_append(JournalRecord::TempCreated { file })?;
        Ok(file)
    }

    /// Makes `file` durable: flushes and syncs its dirty pages, then
    /// journals the `Committed` intent. After a crash, recovery keeps
    /// committed files and reclaims everything else.
    pub fn commit_intent(&self, file: FileId) -> StorageResult<()> {
        self.flush_file(file)?;
        self.journal_append(JournalRecord::Committed { file })
    }

    /// Releases a file created by [`BufferPool::begin_intent`] without
    /// committing it.
    pub fn abort_intent(&self, file: FileId) {
        self.drop_file(file);
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Enables or disables SHORE-style sorted write-behind.
    pub fn set_sorted_flush(&self, enabled: bool) {
        self.sorted_flush.store(enabled, Ordering::Relaxed);
    }

    /// Selects the victim-replacement policy. Takes effect for the next
    /// eviction; the LRU recency list is maintained under both policies,
    /// so switching on a warm pool is well-defined.
    pub fn set_replacement_policy(&self, policy: ReplacementPolicy) {
        lock(&self.state, LockId::PoolState).policy = policy;
    }

    /// The replacement policy in force.
    pub fn replacement_policy(&self) -> ReplacementPolicy {
        lock(&self.state, LockId::PoolState).policy
    }

    /// Sets the transient-fault retry budget.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *lock(&self.retry, LockId::PoolRetry) = policy;
    }

    /// The retry budget in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        *lock(&self.retry, LockId::PoolRetry)
    }

    /// Diagnostic frame census for tests and invariant checks:
    /// `(free frames, pinned frames, mapped pages)`. Every frame is
    /// either on the free list or mapped, so `free + mapped == frames`
    /// whenever no I/O is in flight.
    pub fn frame_census(&self) -> (usize, usize, usize) {
        let st = lock(&self.state, LockId::PoolState);
        let pinned = st.meta.iter().filter(|m| m.pin > 0).count();
        (st.free.len(), pinned, st.map.len())
    }

    /// The free list, top-of-stack last (frames are reused by `pop`).
    /// The canonical cold-pool order is descending, so reuse is by
    /// ascending frame index.
    pub fn free_list(&self) -> Vec<usize> {
        lock(&self.state, LockId::PoolState).free.clone()
    }

    /// Every currently mapped page, in `PageId` order (diagnostic).
    pub fn resident_pages(&self) -> Vec<PageId> {
        lock(&self.state, LockId::PoolState)
            .map
            .keys()
            .copied()
            .collect()
    }

    /// The recency list, coldest first (diagnostic; drives eviction only
    /// under [`ReplacementPolicy::Lru`]). The model-based LRU tests
    /// compare this against a naive reference after every step.
    pub fn lru_order(&self) -> Vec<PageId> {
        let st = lock(&self.state, LockId::PoolState);
        let mut out = Vec::with_capacity(st.map.len());
        let mut cur = st.lru_head;
        while cur != NIL {
            if let Some(pid) = st.meta[cur].page {
                out.push(pid);
            }
            cur = st.lru_next[cur];
        }
        out
    }

    /// Runs one page transfer under the bounded deterministic retry
    /// policy. Transient faults are retried up to the budget and then
    /// surfaced as [`StorageError::RetriesExhausted`]; every other error
    /// passes through untouched.
    fn with_retry(
        policy: RetryPolicy,
        pid: PageId,
        mut op: impl FnMut() -> StorageResult<()>,
    ) -> StorageResult<()> {
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(()) => {
                    if attempt > 1 {
                        obs::cached_counter!("storage.retry.absorbed").incr();
                        obs::flight::record(
                            obs::flight::EventKind::RetryAbsorbed,
                            "page transfer",
                            pid.page_no as u64,
                            attempt as u64,
                        );
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() => {
                    obs::cached_counter!("storage.retry.attempts").incr();
                    obs::flight::record(
                        obs::flight::EventKind::RetryAttempt,
                        "page transfer",
                        pid.page_no as u64,
                        attempt as u64,
                    );
                    if attempt >= policy.max_attempts.max(1) {
                        obs::cached_counter!("storage.retry.exhausted").incr();
                        obs::flight::record(
                            obs::flight::EventKind::RetryExhausted,
                            "page transfer",
                            pid.page_no as u64,
                            attempt as u64,
                        );
                        return Err(StorageError::RetriesExhausted(pid));
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Buffer counters so far.
    pub fn stats(&self) -> PoolStats {
        lock(&self.state, LockId::PoolState).stats
    }

    /// Disk counters so far (reads/writes/seeks/modeled ms).
    pub fn disk_stats(&self) -> DiskStats {
        lock(&self.disk, LockId::PoolDisk).stats()
    }

    /// Direct (read) access to the underlying disk. The returned guard
    /// excludes all pool I/O — do not hold it across other pool calls.
    pub fn disk(&self) -> Tracked<MutexGuard<'_, SimDisk>> {
        lock(&self.disk, LockId::PoolDisk)
    }

    /// Direct (mutable) access to the underlying disk, e.g. for file
    /// creation. Same exclusion caveat as [`BufferPool::disk`].
    pub fn disk_mut(&self) -> Tracked<MutexGuard<'_, SimDisk>> {
        lock(&self.disk, LockId::PoolDisk)
    }

    /// Acquires the shared latch on `frames[idx]`, counting contention.
    /// The caller must hold a pin on the frame (or the table lock with
    /// `pin == 0` — see the module lock-ordering notes). The sentinel
    /// check runs before the try so an inversion panics, never blocks.
    fn read_latch(&self, idx: usize) -> Tracked<RwLockReadGuard<'_, Frame>> {
        obs::bump_shared(&self.counters.pending_latch_shared);
        lockcheck::acquired(LockId::PoolFrame);
        let g = match self.frames[idx].try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => {
                obs::bump_shared(&self.counters.pending_latch_contended);
                self.frames[idx]
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
            }
        };
        Tracked::adopt(LockId::PoolFrame, g)
    }

    /// Acquires the exclusive latch on `frames[idx]`, counting contention.
    fn write_latch(&self, idx: usize) -> Tracked<RwLockWriteGuard<'_, Frame>> {
        obs::bump_shared(&self.counters.pending_latch_exclusive);
        lockcheck::acquired(LockId::PoolFrame);
        let g = match self.frames[idx].try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => {
                obs::bump_shared(&self.counters.pending_latch_contended);
                self.frames[idx]
                    .write()
                    .unwrap_or_else(PoisonError::into_inner)
            }
        };
        Tracked::adopt(LockId::PoolFrame, g)
    }

    /// Picks an unpinned victim frame under the configured policy,
    /// flushing it (and, under sorted flush, every other dirty unpinned
    /// page) if dirty. The caller must already hold the state lock and
    /// passes it in.
    fn evict_victim(&self, st: &mut State) -> StorageResult<usize> {
        if let Some(idx) = st.free.pop() {
            return Ok(idx);
        }
        let victim = match st.policy {
            ReplacementPolicy::Clock => {
                let n = self.frames.len();
                let mut victim = None;
                for _ in 0..2 * n {
                    let idx = st.hand;
                    st.hand = (st.hand + 1) % n;
                    let m = &mut st.meta[idx];
                    if m.pin > 0 {
                        continue;
                    }
                    if m.referenced {
                        m.referenced = false;
                        continue;
                    }
                    victim = Some(idx);
                    break;
                }
                victim
            }
            ReplacementPolicy::Lru => {
                // Walk from the cold end past pinned frames (Snippet-1:
                // "walk backward past pinned" from the eviction end).
                let mut cur = st.lru_head;
                loop {
                    if cur == NIL {
                        break None;
                    }
                    if st.meta[cur].pin == 0 {
                        break Some(cur);
                    }
                    cur = st.lru_next[cur];
                }
            }
        };
        let victim = victim.ok_or(StorageError::BufferPoolFull)?;
        if st.meta[victim].dirty {
            self.flush_dirty(st, victim)?;
        }
        st.stats.evictions += 1;
        obs::bump_shared(&self.counters.pending_evictions);
        if let Some(old) = st.meta[victim].page.take() {
            st.map.remove(&old);
            st.lru_detach(victim);
            self.counters
                .occupied
                .store(st.map.len() as u64, Ordering::Relaxed);
        }
        st.meta[victim].dirty = false;
        Ok(victim)
    }

    /// Writes back the victim — and, under sorted flush, all other dirty
    /// unpinned pages, in ascending physical order. Every page in the
    /// batch has `pin == 0` and the state lock is held throughout, so the
    /// shared latches taken here are uncontended-by-invariant (module
    /// docs) and the frame images cannot change mid-write.
    fn flush_dirty(&self, st: &mut State, victim: usize) -> StorageResult<()> {
        let mut batch: Vec<(PageId, usize)> = Vec::new();
        if self.sorted_flush.load(Ordering::Relaxed) {
            for (idx, m) in st.meta.iter().enumerate() {
                if m.dirty && m.pin == 0 {
                    if let Some(pid) = m.page {
                        batch.push((pid, idx));
                    }
                }
            }
            batch.sort_unstable();
        } else if let Some(pid) = st.meta[victim].page {
            batch.push((pid, victim));
        }
        let retry = self.retry_policy();
        let mut disk = lock(&self.disk, LockId::PoolDisk);
        for (pid, idx) in batch {
            let frame = self.read_latch(idx);
            Self::with_retry(retry, pid, || disk.write_page(pid, &frame.data))?;
            st.meta[idx].dirty = false;
            st.stats.writebacks += 1;
            obs::bump_shared(&self.counters.pending_writebacks);
        }
        Ok(())
    }

    /// Locates `pid` in the pool, reading it from disk on a miss. Returns
    /// the frame index with the pin already taken.
    ///
    /// The state lock is held across the whole miss path, including the
    /// disk read: concurrent misses on the same page serialize here, and
    /// the second requester finds a hit instead of double-reading.
    fn pin_frame(&self, pid: PageId, read_from_disk: bool) -> StorageResult<usize> {
        let retry = self.retry_policy();
        let mut st = lock(&self.state, LockId::PoolState);
        if let Some(&idx) = st.map.get(&pid) {
            st.stats.hits += 1;
            obs::bump_shared(&self.counters.pending_hits);
            let m = &mut st.meta[idx];
            m.pin += 1;
            m.referenced = true;
            st.lru_touch(idx);
            return Ok(idx);
        }
        st.stats.misses += 1;
        obs::bump_shared(&self.counters.pending_misses);
        let idx = self.evict_victim(&mut st)?;
        {
            // Exclusive latch on an evicted (unmapped, pin == 0) frame,
            // held across the disk read by design — see the method doc.
            // pbsm-lint: allow(lock-order, reason = "miss path: pool.state serializes concurrent misses, and the evicted frame is unmapped with pin == 0, so no other thread can hold or want this latch while the read fills it")
            let mut frame = self.write_latch(idx);
            if read_from_disk {
                let read = Self::with_retry(retry, pid, || {
                    lock(&self.disk, LockId::PoolDisk).read_page(pid, &mut frame.data)
                });
                if let Err(e) = read {
                    // The frame was unmapped by the eviction; return it
                    // to the free list or it would leak until shutdown.
                    st.free.push(idx);
                    return Err(e);
                }
            } else {
                frame.data.fill(0);
            }
        }
        st.map.insert(pid, idx);
        self.counters
            .occupied
            .store(st.map.len() as u64, Ordering::Relaxed);
        st.meta[idx] = FrameMeta {
            page: Some(pid),
            dirty: !read_from_disk,
            pin: 1,
            referenced: true,
        };
        st.lru_push_mru(idx);
        Ok(idx)
    }

    /// Pins `pid` for reading.
    pub fn get(&self, pid: PageId) -> StorageResult<PageRef<'_>> {
        let idx = self.pin_frame(pid, true)?;
        Ok(PageRef {
            pool: self,
            idx,
            frame: self.read_latch(idx),
        })
    }

    /// Pins `pid` for writing; the page is marked dirty.
    pub fn get_mut(&self, pid: PageId) -> StorageResult<PageMut<'_>> {
        let idx = self.pin_frame(pid, true)?;
        // Dirty before the latch: flushers skip pinned frames, so the
        // mark cannot be consumed until this guard drops.
        lock(&self.state, LockId::PoolState).meta[idx].dirty = true;
        Ok(PageMut {
            pool: self,
            idx,
            frame: self.write_latch(idx),
        })
    }

    /// Allocates a fresh page in `file` and pins it for writing without a
    /// disk read (it is known-zero). This is how partition files and index
    /// builds append pages.
    pub fn new_page(&self, file: FileId) -> StorageResult<(PageId, PageMut<'_>)> {
        let pid = lock(&self.disk, LockId::PoolDisk).allocate_page(file)?;
        // A zero-fill install is born dirty, so no extra mark is needed.
        let idx = self.pin_frame(pid, false)?;
        Ok((
            pid,
            PageMut {
                pool: self,
                idx,
                frame: self.write_latch(idx),
            },
        ))
    }

    /// Writes every dirty page back to disk in sorted order.
    pub fn flush_all(&self) -> StorageResult<()> {
        let mut st = lock(&self.state, LockId::PoolState);
        let mut batch: Vec<(PageId, usize)> = Vec::new();
        for (idx, m) in st.meta.iter().enumerate() {
            if m.dirty {
                if let Some(pid) = m.page {
                    assert_eq!(m.pin, 0, "flush_all with pinned dirty page {pid:?}");
                    batch.push((pid, idx));
                }
            }
        }
        batch.sort_unstable();
        let retry = self.retry_policy();
        let mut disk = lock(&self.disk, LockId::PoolDisk);
        for (pid, idx) in batch {
            let frame = self.read_latch(idx);
            Self::with_retry(retry, pid, || disk.write_page(pid, &frame.data))?;
            st.meta[idx].dirty = false;
            st.stats.writebacks += 1;
            obs::bump_shared(&self.counters.pending_writebacks);
        }
        Ok(())
    }

    /// Writes `file`'s dirty pages back in sorted order and syncs the
    /// device: on return the file's contents are crash-durable (pending
    /// torn writes, if any, are confirmed). This is the durability half
    /// of a commit or checkpoint; the journal record is the other half.
    pub fn flush_file(&self, file: FileId) -> StorageResult<()> {
        let mut st = lock(&self.state, LockId::PoolState);
        let mut batch: Vec<(PageId, usize)> = Vec::new();
        for (idx, m) in st.meta.iter().enumerate() {
            if m.dirty {
                if let Some(pid) = m.page {
                    if pid.file == file {
                        assert_eq!(m.pin, 0, "flush_file with pinned dirty page {pid:?}");
                        batch.push((pid, idx));
                    }
                }
            }
        }
        batch.sort_unstable();
        let retry = self.retry_policy();
        let mut disk = lock(&self.disk, LockId::PoolDisk);
        for (pid, idx) in batch {
            let frame = self.read_latch(idx);
            Self::with_retry(retry, pid, || disk.write_page(pid, &frame.data))?;
            st.meta[idx].dirty = false;
            st.stats.writebacks += 1;
            obs::bump_shared(&self.counters.pending_writebacks);
        }
        disk.sync();
        Ok(())
    }

    /// Flushes all dirty pages, then drops every cached mapping, returning
    /// the pool to a cold state. Benchmarks call this between phases so
    /// each measured run starts with an empty cache, like a fresh process
    /// in the paper's testbed. Panics if any page is pinned.
    pub fn clear_cache(&self) -> StorageResult<()> {
        self.flush_all()?;
        let mut st = lock(&self.state, LockId::PoolState);
        let entries: Vec<(PageId, usize)> = std::mem::take(&mut st.map).into_iter().collect();
        self.counters.occupied.store(0, Ordering::Relaxed);
        for (pid, idx) in entries {
            assert_eq!(st.meta[idx].pin, 0, "clear_cache with pinned page {pid:?}");
            st.lru_detach(idx);
            st.meta[idx] = FrameMeta {
                page: None,
                dirty: false,
                pin: 0,
                referenced: false,
            };
            st.free.push(idx);
        }
        // Restore the canonical cold-pool free order (descending index)
        // so frame allocation — and hence the I/O pattern — is identical
        // run to run regardless of which pages happened to be cached.
        st.free.sort_unstable_by(|a, b| b.cmp(a));
        Ok(())
    }

    /// Discards all cached pages of `file` (without write-back) and frees
    /// it on disk. Panics if any of its pages are pinned.
    pub fn drop_file(&self, file: FileId) {
        let mut st = lock(&self.state, LockId::PoolState);
        let mut doomed: Vec<(PageId, usize)> = st
            .map
            .iter()
            .filter(|(pid, _)| pid.file == file)
            .map(|(p, i)| (*p, *i))
            .collect();
        // Free lowest frame index last so reuse order is deterministic
        // no matter which of the file's pages were resident.
        doomed.sort_unstable_by_key(|d| std::cmp::Reverse(d.1));
        for (pid, idx) in doomed {
            assert_eq!(st.meta[idx].pin, 0, "drop_file with pinned page {pid:?}");
            st.map.remove(&pid);
            st.lru_detach(idx);
            st.meta[idx] = FrameMeta {
                page: None,
                dirty: false,
                pin: 0,
                referenced: false,
            };
            st.free.push(idx);
        }
        self.counters
            .occupied
            .store(st.map.len() as u64, Ordering::Relaxed);
        drop(st);
        lock(&self.disk, LockId::PoolDisk).drop_file(file);
        // Best-effort: a failed (e.g. crashed) drop record is safe — the
        // file's pages are gone or recovery will reclaim them; either way
        // nothing leaks. Never journal a drop of the journal itself.
        if self.journal_file() != Some(file) {
            let _ = self.journal_append(JournalRecord::TempDropped { file });
        }
    }

    /// Tears the pool down, discarding every cached (possibly dirty)
    /// frame, and returns the disk — exactly what a process crash leaves
    /// behind. The crash harness feeds the result to `Db::recover`.
    pub fn into_disk(self) -> SimDisk {
        self.disk
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn unpin(&self, idx: usize) {
        let mut st = lock(&self.state, LockId::PoolState);
        let m = &mut st.meta[idx];
        debug_assert!(m.pin > 0);
        m.pin -= 1;
    }
}

/// A read pin on a page. Derefs to the page bytes; unpins on drop.
///
/// Drop order matters: `Drop::drop` releases the pin *first*, then the
/// latch field drops. Between the two, the holder owns no locks, so an
/// evictor that saw `pin == 0` and is blocking on this latch makes
/// progress immediately (see the module lock-ordering notes).
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    idx: usize,
    frame: Tracked<RwLockReadGuard<'a, Frame>>,
}

impl Deref for PageRef<'_> {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.frame.data
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx);
    }
}

/// A write pin on a page. Derefs to the page bytes; unpins on drop. The
/// page was marked dirty when the guard was created. Same drop-order
/// contract as [`PageRef`].
pub struct PageMut<'a> {
    pool: &'a BufferPool,
    idx: usize,
    frame: Tracked<RwLockWriteGuard<'a, Frame>>,
}

impl Deref for PageMut<'_> {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.frame.data
    }
}

impl DerefMut for PageMut<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.frame.data
    }
}

impl Drop for PageMut<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskModel;

    fn pool_with(nframes: usize) -> (BufferPool, FileId) {
        let mut disk = SimDisk::new(DiskModel::default());
        let f = disk.create_file();
        (BufferPool::new(nframes * PAGE_SIZE, disk), f)
    }

    #[test]
    fn pool_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<BufferPool>();
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (pool, f) = pool_with(8);
        let pid = {
            let (pid, mut page) = pool.new_page(f).unwrap();
            page[0] = 42;
            page[PAGE_SIZE - 1] = 24;
            pid
        };
        let page = pool.get(pid).unwrap();
        assert_eq!(page[0], 42);
        assert_eq!(page[PAGE_SIZE - 1], 24);
        // Fresh page never touched disk: 0 reads so far.
        assert_eq!(pool.disk_stats().reads, 0);
    }

    #[test]
    fn eviction_writes_back_and_rereads() {
        let (pool, f) = pool_with(8);
        let mut pids = Vec::new();
        for i in 0..20u8 {
            let (pid, mut page) = pool.new_page(f).unwrap();
            page[0] = i;
            pids.push(pid);
        }
        // Early pages were evicted (8 frames, 20 pages) and written out.
        assert!(pool.disk_stats().writes > 0);
        for (i, pid) in pids.iter().enumerate() {
            let page = pool.get(*pid).unwrap();
            assert_eq!(page[0], i as u8, "page {i}");
        }
        assert!(pool.disk_stats().reads > 0);
    }

    #[test]
    fn all_pinned_errors() {
        let (pool, f) = pool_with(8);
        let mut guards = Vec::new();
        for _ in 0..8 {
            let (pid, g) = pool.new_page(f).unwrap();
            let _ = pid;
            guards.push(g);
        }
        let err = pool.new_page(f).map(|_| ()).unwrap_err();
        assert_eq!(err, StorageError::BufferPoolFull);
        drop(guards);
        assert!(pool.new_page(f).is_ok());
    }

    #[test]
    fn all_pinned_errors_under_lru() {
        let (pool, f) = pool_with(8);
        pool.set_replacement_policy(ReplacementPolicy::Lru);
        let mut guards = Vec::new();
        for _ in 0..8 {
            let (_pid, g) = pool.new_page(f).unwrap();
            guards.push(g);
        }
        let err = pool.new_page(f).map(|_| ()).unwrap_err();
        assert_eq!(err, StorageError::BufferPoolFull);
        drop(guards);
        assert!(pool.new_page(f).is_ok());
    }

    #[test]
    fn hit_and_miss_counters() {
        let (pool, f) = pool_with(8);
        let (pid, g) = pool.new_page(f).unwrap();
        drop(g);
        let _ = pool.get(pid).unwrap();
        let _ = pool.get(pid).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1); // the new_page install
    }

    #[test]
    fn sorted_flush_reduces_seeks() {
        // Dirty 16 pages in reverse order, then force eviction; sorted
        // flush should write them ascending → few seeks.
        let run = |sorted: bool| -> u64 {
            let (pool, f) = pool_with(16);
            pool.set_sorted_flush(sorted);
            let mut pids = Vec::new();
            for _ in 0..16 {
                let (pid, _g) = pool.new_page(f).unwrap();
                pids.push(pid);
            }
            // Touch in reverse so clock order ≠ disk order.
            for pid in pids.iter().rev() {
                let mut g = pool.get_mut(*pid).unwrap();
                g[1] = 1;
            }
            let before = pool.disk_stats().seeks;
            pool.flush_all().unwrap();
            pool.disk_stats().seeks - before
        };
        let sorted_seeks = run(true);
        // flush_all always sorts; verify the write-behind on eviction too.
        assert!(sorted_seeks <= 2, "sorted flush used {sorted_seeks} seeks");
    }

    #[test]
    fn eviction_sorted_writeback_batches_dirty_pages() {
        let (pool, f) = pool_with(8);
        // Fill all 8 frames dirty.
        let mut pids = Vec::new();
        for _ in 0..8 {
            let (pid, _g) = pool.new_page(f).unwrap();
            pids.push(pid);
        }
        // Trigger one eviction; sorted write-behind flushes all 8.
        let (_pid9, _g) = pool.new_page(f).unwrap();
        assert_eq!(pool.stats().writebacks, 8);
        // Their writes were sequential: seeks stay small.
        assert!(pool.disk_stats().seeks <= 2);
    }

    #[test]
    fn clear_cache_flushes_and_cools() {
        let (pool, f) = pool_with(8);
        let (pid, g) = pool.new_page(f).unwrap();
        drop(g);
        pool.clear_cache().unwrap();
        assert_eq!(pool.disk_stats().writes, 1);
        let misses_before = pool.stats().misses;
        let _ = pool.get(pid).unwrap();
        assert_eq!(
            pool.stats().misses,
            misses_before + 1,
            "cache should be cold"
        );
    }

    #[test]
    fn drop_file_discards_dirty_pages() {
        let (pool, f) = pool_with(8);
        let (_pid, g) = pool.new_page(f).unwrap();
        drop(g);
        pool.drop_file(f);
        assert_eq!(pool.disk_stats().writes, 0);
        assert_eq!(pool.disk().num_pages(f), 0);
    }

    #[test]
    fn flush_file_flushes_only_that_file() {
        let mut disk = SimDisk::new(DiskModel::default());
        let f1 = disk.create_file();
        let f2 = disk.create_file();
        let pool = BufferPool::new(8 * PAGE_SIZE, disk);
        let (_p1, g1) = pool.new_page(f1).unwrap();
        drop(g1);
        let (_p2, g2) = pool.new_page(f2).unwrap();
        drop(g2);
        pool.flush_file(f1).unwrap();
        assert_eq!(pool.disk_stats().writes, 1);
        pool.flush_all().unwrap();
        assert_eq!(pool.disk_stats().writes, 2);
    }

    #[test]
    fn intent_protocol_journals_lifecycle() {
        let mut disk = SimDisk::new(DiskModel::default());
        let j = Journal::create(&mut disk);
        let pool = BufferPool::new(8 * PAGE_SIZE, disk);
        pool.install_journal(j);
        assert!(pool.journal_enabled());
        let f = pool.begin_intent().unwrap();
        let (_pid, g) = pool.new_page(f).unwrap();
        drop(g);
        pool.commit_intent(f).unwrap();
        let f2 = pool.begin_intent().unwrap();
        pool.abort_intent(f2);
        let mut disk = pool.into_disk();
        let recs = Journal::scan(&mut disk, FileId(0)).unwrap();
        assert_eq!(
            recs,
            vec![
                JournalRecord::TempCreated { file: f },
                JournalRecord::Committed { file: f },
                JournalRecord::TempCreated { file: f2 },
                JournalRecord::TempDropped { file: f2 },
            ]
        );
    }

    #[test]
    fn transient_read_faults_absorbed_by_retry() {
        let (pool, f) = pool_with(8);
        let pid = {
            let (pid, mut g) = pool.new_page(f).unwrap();
            g[0] = 5;
            pid
        };
        pool.clear_cache().unwrap();
        pool.disk_mut().set_faults(Some(crate::fault::FaultConfig {
            seed: 2,
            read_transient_ppm: 300_000, // 30% per attempt, bursts of ≤ 2
            max_transient_burst: 2,
            ..Default::default()
        }));
        // Every miss re-reads from disk. Most faults are absorbed by the
        // 4-attempt budget; back-to-back fresh draws can still chain past
        // it, which must surface as the typed error, never a panic.
        let mut successes = 0;
        for _ in 0..50 {
            match pool.get(pid) {
                Ok(g) => {
                    assert_eq!(g[0], 5);
                    successes += 1;
                }
                Err(e) => assert_eq!(e, StorageError::RetriesExhausted(pid)),
            }
            pool.clear_cache().unwrap();
        }
        assert!(successes > 40, "retry should absorb most faults");
        assert!(pool.disk().fault_tally().transient_reads > 0);
    }

    #[test]
    fn exhausted_retries_surface_typed_error_without_leaking_frames() {
        let (pool, f) = pool_with(8);
        let pid = {
            let (pid, _g) = pool.new_page(f).unwrap();
            pid
        };
        pool.clear_cache().unwrap();
        pool.set_retry_policy(RetryPolicy { max_attempts: 1 });
        pool.disk_mut().set_faults(Some(crate::fault::FaultConfig {
            seed: 9,
            read_transient_ppm: 1_000_000,
            max_transient_burst: 1,
            ..Default::default()
        }));
        let err = pool.get(pid).map(|_| ()).unwrap_err();
        assert_eq!(err, StorageError::RetriesExhausted(pid));
        // The frame grabbed for the failed read went back to the free
        // list: all frames accounted for, none pinned.
        let (free, pinned, mapped) = pool.frame_census();
        assert_eq!(free + mapped, pool.num_frames());
        assert_eq!(pinned, 0);
        // With faults cleared the same page reads fine.
        pool.disk_mut().set_faults(None);
        assert!(pool.get(pid).is_ok());
    }

    #[test]
    fn corruption_propagates_from_miss() {
        let (pool, f) = pool_with(8);
        pool.disk_mut().set_faults(Some(crate::fault::FaultConfig {
            seed: 4,
            torn_write_ppm: 1_000_000,
            ..Default::default()
        }));
        let pid = {
            let (pid, mut g) = pool.new_page(f).unwrap();
            // Fill the whole page: a tear reverts a 64-byte span to the
            // pre-write image (zeros here), so every span must differ for
            // the revert to be observable wherever it lands.
            g.fill(7);
            pid
        };
        pool.clear_cache().unwrap(); // torn write-back happens here
                                     // The tear is latent until a crash materializes it.
        {
            let mut disk = pool.disk_mut();
            disk.crash_now();
            disk.clear_crash();
            disk.set_faults(None);
        }
        let err = pool.get(pid).map(|_| ()).unwrap_err();
        assert_eq!(err, StorageError::Corruption(pid));
        let (free, pinned, mapped) = pool.frame_census();
        assert_eq!(free + mapped, pool.num_frames());
        assert_eq!(pinned, 0);
    }

    #[test]
    fn get_mut_marks_dirty() {
        let (pool, f) = pool_with(8);
        let (pid, g) = pool.new_page(f).unwrap();
        drop(g);
        pool.flush_all().unwrap();
        let w0 = pool.disk_stats().writes;
        {
            let mut g = pool.get_mut(pid).unwrap();
            g[3] = 3;
        }
        pool.flush_all().unwrap();
        assert_eq!(pool.disk_stats().writes, w0 + 1);
        // Clean page: nothing further to write.
        pool.flush_all().unwrap();
        assert_eq!(pool.disk_stats().writes, w0 + 1);
    }

    /// The splitmix-flavored LCG the bench harnesses use for seeded
    /// deterministic traces.
    fn lcg_next(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn lru_matches_reference_model() {
        const FRAMES: usize = 8;
        const PAGES: usize = 24;
        let (pool, f) = pool_with(FRAMES);
        pool.set_replacement_policy(ReplacementPolicy::Lru);
        let mut pids = Vec::new();
        for _ in 0..PAGES {
            let (pid, _g) = pool.new_page(f).unwrap();
            pids.push(pid);
        }
        pool.clear_cache().unwrap();
        // Reference model: a naive Vec in recency order, coldest first.
        let mut model: Vec<PageId> = Vec::new();
        let mut rng = 0x5EED_0001u64;
        let (mut hits, mut misses) = (0u64, 0u64);
        let s0 = pool.stats();
        for step in 0..600 {
            let pid = pids[(lcg_next(&mut rng) % PAGES as u64) as usize];
            if let Some(pos) = model.iter().position(|p| *p == pid) {
                model.remove(pos);
                hits += 1;
            } else {
                if model.len() == FRAMES {
                    model.remove(0);
                }
                misses += 1;
            }
            model.push(pid);
            drop(pool.get(pid).unwrap());
            assert_eq!(
                pool.lru_order(),
                model,
                "intrusive list diverged from the reference at step {step}"
            );
        }
        let s = pool.stats();
        assert_eq!(s.hits - s0.hits, hits, "hit count must match the model");
        assert_eq!(s.misses - s0.misses, misses, "miss count must match");
    }

    #[test]
    fn lru_eviction_skips_pinned_cold_frames() {
        let (pool, f) = pool_with(8);
        pool.set_replacement_policy(ReplacementPolicy::Lru);
        let mut pids = Vec::new();
        for _ in 0..8 {
            let (pid, _g) = pool.new_page(f).unwrap();
            pids.push(pid);
        }
        // Pin pids[0], then touch everything else so it becomes the
        // coldest entry — the LRU head — while pinned.
        let held = pool.get(pids[0]).unwrap();
        for pid in &pids[1..] {
            drop(pool.get(*pid).unwrap());
        }
        assert_eq!(pool.lru_order().first(), Some(&pids[0]));
        // Faulting in a new page must evict pids[1] (next-coldest), never
        // the pinned head.
        let (_pid9, _g9) = pool.new_page(f).unwrap();
        let resident = pool.resident_pages();
        assert!(resident.contains(&pids[0]), "pinned frame evicted");
        assert!(!resident.contains(&pids[1]), "wrong victim chosen");
        drop(held);
    }

    #[test]
    fn each_policy_is_run_to_run_deterministic() {
        let run = |policy: ReplacementPolicy| {
            let (pool, f) = pool_with(8);
            pool.set_replacement_policy(policy);
            let mut pids = Vec::new();
            for _ in 0..16 {
                let (pid, _g) = pool.new_page(f).unwrap();
                pids.push(pid);
            }
            let mut rng = 0xFACE_0002u64;
            for _ in 0..400 {
                let pid = pids[(lcg_next(&mut rng) % 16) as usize];
                if lcg_next(&mut rng).is_multiple_of(4) {
                    let mut g = pool.get_mut(pid).unwrap();
                    g[2] = g[2].wrapping_add(1);
                } else {
                    drop(pool.get(pid).unwrap());
                }
            }
            (pool.stats(), pool.disk_stats(), pool.resident_pages())
        };
        let clock = (run(ReplacementPolicy::Clock), run(ReplacementPolicy::Clock));
        assert_eq!(clock.0, clock.1, "clock must be run-to-run deterministic");
        let lru = (run(ReplacementPolicy::Lru), run(ReplacementPolicy::Lru));
        assert_eq!(lru.0, lru.1, "LRU must be run-to-run deterministic");
    }
}
