//! The system catalog.
//!
//! PBSM's spatial partitioning function starts "from the catalog
//! information for the joining attribute of input R" to estimate the
//! *universe* — "the rectangle that is the minimum cover of the join
//! attribute of all the tuples in the input" (§3.1). Loaders maintain that
//! rectangle (plus cardinality and size statistics) here, and joins read
//! it back instead of scanning the data.

use crate::error::{StorageError, StorageResult};
use crate::page::{FileId, PageId};
use pbsm_geom::Rect;
use std::collections::BTreeMap;

/// Statistics and location of a stored relation.
#[derive(Clone, Debug)]
pub struct RelationMeta {
    /// Relation name (e.g. "road").
    pub name: String,
    /// Heap file holding the tuples.
    pub file: FileId,
    /// Number of tuples.
    pub cardinality: u64,
    /// Minimum cover of all join-attribute MBRs — the PBSM universe.
    pub universe: Rect,
    /// Total bytes of tuple data (for Table 2/3-style reporting).
    pub bytes: u64,
    /// Mean vertex count of the spatial attribute.
    pub avg_points: f64,
    /// Whether the file was loaded in spatial (Hilbert) order.
    pub clustered: bool,
}

/// Location and shape of an R*-tree index.
#[derive(Clone, Copy, Debug)]
pub struct IndexMeta {
    /// File holding the index pages.
    pub file: FileId,
    /// Root node page.
    pub root: PageId,
    /// Levels, counting the leaf level as 1.
    pub height: u32,
    /// Number of leaf entries.
    pub entries: u64,
}

/// In-memory catalog of relations and their spatial indices.
///
/// Stored in `BTreeMap`s so every enumeration (and anything derived from
/// one) is in name order, never hash order — the project-wide
/// determinism contract.
#[derive(Default)]
pub struct Catalog {
    relations: BTreeMap<String, RelationMeta>,
    indexes: BTreeMap<String, IndexMeta>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a relation's metadata.
    pub fn put_relation(&mut self, meta: RelationMeta) {
        self.relations.insert(meta.name.clone(), meta);
    }

    /// Looks up a relation.
    pub fn relation(&self, name: &str) -> StorageResult<&RelationMeta> {
        self.relations
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Registers an index on `relation`.
    pub fn put_index(&mut self, relation: &str, meta: IndexMeta) {
        self.indexes.insert(relation.to_string(), meta);
    }

    /// Index on `relation`, if one exists.
    pub fn index(&self, relation: &str) -> Option<IndexMeta> {
        self.indexes.get(relation).copied()
    }

    /// Drops the index registration for `relation`, returning it.
    pub fn take_index(&mut self, relation: &str) -> Option<IndexMeta> {
        self.indexes.remove(relation)
    }

    /// All registered relation names, sorted (`BTreeMap` key order).
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Clones every relation's metadata, in name order. The catalog is
    /// volatile (it does not survive a crash), so harnesses snapshot it
    /// before a simulated kill and re-register relations after
    /// [`crate::Db::recover`].
    pub fn snapshot(&self) -> Vec<RelationMeta> {
        self.relations.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str) -> RelationMeta {
        RelationMeta {
            name: name.to_string(),
            file: FileId(1),
            cardinality: 10,
            universe: Rect::new(0.0, 0.0, 1.0, 1.0),
            bytes: 1000,
            avg_points: 8.0,
            clustered: false,
        }
    }

    #[test]
    fn relation_roundtrip() {
        let mut c = Catalog::new();
        c.put_relation(meta("road"));
        assert_eq!(c.relation("road").unwrap().cardinality, 10);
        assert!(matches!(
            c.relation("rail"),
            Err(StorageError::UnknownRelation(_))
        ));
        assert_eq!(c.relation_names(), vec!["road"]);
    }

    #[test]
    fn index_registration() {
        let mut c = Catalog::new();
        c.put_relation(meta("road"));
        assert!(c.index("road").is_none());
        let im = IndexMeta {
            file: FileId(2),
            root: PageId::new(FileId(2), 0),
            height: 3,
            entries: 456,
        };
        c.put_index("road", im);
        assert_eq!(c.index("road").unwrap().entries, 456);
        assert_eq!(c.take_index("road").unwrap().entries, 456);
        assert!(c.index("road").is_none());
    }
}
