//! The database handle tying disk, buffer pool, and catalog together.
//!
//! With `DbConfig::journal` enabled, the handle also owns the
//! crash-consistency story: [`Db::new`] claims file 0 for the intent
//! journal, and [`Db::recover`] rebuilds a usable instance from whatever
//! a crashed process left on the disk — reclaiming un-committed files and
//! surfacing the interrupted join's checkpoints as a [`RecoveredState`].

use crate::buffer::{BufferPool, ReplacementPolicy};
use crate::catalog::Catalog;
use crate::disk::{DiskModel, DiskStats, SimDisk};
use crate::fault::{FaultConfig, RetryPolicy};
use crate::journal::{JoinResume, Journal, JournalRecord, RecoveredState};
use crate::lockcheck::{self, LockId, Tracked};
use crate::page::FileId;
use crate::StorageResult;
use pbsm_obs as obs;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Configuration for a [`Db`] instance.
#[derive(Clone, Copy, Debug)]
pub struct DbConfig {
    /// Buffer pool size in bytes (the paper varies 2/8/24 MB).
    pub buffer_pool_bytes: usize,
    /// Disk timing model.
    pub disk: DiskModel,
    /// SHORE-style sorted write-behind (§4.6). Default on.
    pub sorted_flush: bool,
    /// Seeded fault schedule installed at creation. `None` (the default)
    /// is a perfect device; chaos runs install one after loading data via
    /// [`SimDisk::set_faults`].
    pub faults: Option<FaultConfig>,
    /// Bounded deterministic retry budget for transient faults.
    pub retry: RetryPolicy,
    /// Crash consistency: claim file 0 for the intent journal and log
    /// every file-lifecycle intent and join checkpoint through it.
    /// Default off — journaling shifts file ids and adds writes, and the
    /// gated deterministic benchmarks must stay byte-identical.
    pub journal: bool,
    /// Buffer-pool victim selection. Default [`ReplacementPolicy::Clock`]
    /// — the policy the gated deterministic counter streams were recorded
    /// under; [`ReplacementPolicy::Lru`] selects the exact-LRU list.
    pub replacement: ReplacementPolicy,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_pool_bytes: 24 * 1024 * 1024,
            disk: DiskModel::default(),
            sorted_flush: true,
            faults: None,
            retry: RetryPolicy::default(),
            journal: false,
            replacement: ReplacementPolicy::default(),
        }
    }
}

impl DbConfig {
    /// Convenience constructor with the pool size in megabytes.
    pub fn with_pool_mb(mb: usize) -> Self {
        DbConfig {
            buffer_pool_bytes: mb * 1024 * 1024,
            ..DbConfig::default()
        }
    }
}

/// Resting levels of the resources the leak sentinels watch, captured
/// from the engine's own state (disk allocator, page table, journal) so
/// a baseline never depends on metric-flush timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryBaseline {
    /// Pages allocated across all live files.
    pub live_pages: u64,
    /// Pages currently mapped to a buffer-pool frame.
    pub pool_occupied: u64,
    /// Journaled temp files awaiting a drop or commit.
    pub journal_open_intents: u64,
    /// Pages held by the append-only journal file itself. The journal
    /// legitimately grows forever, so leak math over `live_pages`
    /// subtracts this.
    pub journal_pages: u64,
}

/// An in-process spatial database instance: simulated disk + buffer pool +
/// catalog. All structures (heap files, record files, R*-trees) operate
/// through [`Db::pool`].
///
/// `Db` is `Sync`: N serving threads may share one instance through
/// [`Db::read_snapshot`] handles, running queries concurrently against
/// the shared buffer pool (see the lock-ordering notes in
/// [`crate::buffer`]).
pub struct Db {
    pool: BufferPool,
    catalog: RwLock<Catalog>,
    config: DbConfig,
}

impl Db {
    /// Creates an empty database.
    pub fn new(config: DbConfig) -> Self {
        let mut disk = SimDisk::new(config.disk);
        disk.set_faults(config.faults);
        // The journal must claim file 0 before anything else exists.
        let journal = config.journal.then(|| Journal::create(&mut disk));
        let pool = BufferPool::new(config.buffer_pool_bytes, disk);
        pool.set_sorted_flush(config.sorted_flush);
        pool.set_retry_policy(config.retry);
        pool.set_replacement_policy(config.replacement);
        if let Some(j) = journal {
            pool.install_journal(j);
        }
        Db {
            pool,
            catalog: RwLock::new(Catalog::new()),
            config,
        }
    }

    /// Rebuilds a database from a disk a crashed process left behind.
    ///
    /// Clears the crash poison, scans the intent journal (tolerating a
    /// torn tail), and reclaims every file that is neither the journal,
    /// nor committed, nor a checkpoint of the join that was in flight —
    /// restoring the `live_pages` accounting a dead process could not.
    /// The catalog is volatile (it lived in the crashed process's
    /// memory), so callers re-register their relations; only committed
    /// heap files have durable data to re-register *onto*.
    pub fn recover(config: DbConfig, mut disk: SimDisk) -> StorageResult<(Db, RecoveredState)> {
        obs::flight::record(
            obs::flight::EventKind::RecoveryDecision,
            "recover start",
            disk.num_files() as u64,
            disk.live_pages(),
        );
        disk.clear_crash();
        disk.set_faults(config.faults);
        if !config.journal || disk.num_files() == 0 {
            // Nothing journaled, nothing to reconcile: a fresh instance
            // over the surviving disk.
            let pool = BufferPool::new(config.buffer_pool_bytes, disk);
            pool.set_sorted_flush(config.sorted_flush);
            pool.set_retry_policy(config.retry);
            pool.set_replacement_policy(config.replacement);
            let db = Db {
                pool,
                catalog: RwLock::new(Catalog::new()),
                config,
            };
            return Ok((db, RecoveredState::default()));
        }

        let (journal, records) = Journal::open_at_tail(&mut disk)?;
        let jfile = journal.file_id();

        // Replay the intent log: which files were committed, which were
        // dropped, and what the in-flight join had checkpointed.
        let mut committed: BTreeSet<FileId> = BTreeSet::new();
        let mut cur: Option<JoinResume> = None;
        let mut pairs: BTreeMap<u32, crate::journal::PairCkpt> = BTreeMap::new();
        let mut runs: BTreeMap<u32, crate::journal::RunCkpt> = BTreeMap::new();
        for rec in &records {
            match *rec {
                JournalRecord::TempCreated { .. } => {}
                JournalRecord::TempDropped { file } => {
                    committed.remove(&file);
                    // A dropped file invalidates any checkpoint naming it.
                    pairs.retain(|_, c| c.file != file);
                    runs.retain(|_, c| c.file != file);
                }
                JournalRecord::Committed { file } => {
                    committed.insert(file);
                }
                JournalRecord::JoinBegin {
                    join_id,
                    fingerprint,
                    partitions,
                } => {
                    cur = Some(JoinResume {
                        join_id,
                        fingerprint,
                        partitions,
                        pairs: Vec::new(),
                        runs: Vec::new(),
                    });
                    pairs.clear();
                    runs.clear();
                }
                JournalRecord::PairDone {
                    join_id,
                    pair_index,
                    file,
                    count,
                } => {
                    if cur.as_ref().is_some_and(|j| j.join_id == join_id) {
                        pairs.insert(
                            pair_index,
                            crate::journal::PairCkpt {
                                index: pair_index,
                                file,
                                count,
                            },
                        );
                    }
                }
                JournalRecord::RunDone {
                    join_id,
                    run_index,
                    file,
                    count,
                } => {
                    if cur.as_ref().is_some_and(|j| j.join_id == join_id) {
                        runs.insert(
                            run_index,
                            crate::journal::RunCkpt {
                                index: run_index,
                                file,
                                count,
                            },
                        );
                    }
                }
                JournalRecord::JoinEnd { join_id } => {
                    if cur.as_ref().is_some_and(|j| j.join_id == join_id) {
                        cur = None;
                        pairs.clear();
                        runs.clear();
                    }
                }
            }
        }
        if let Some(j) = cur.as_mut() {
            obs::flight::record(
                obs::flight::EventKind::RecoveryDecision,
                "join in flight",
                j.join_id,
                j.partitions as u64,
            );
            j.pairs = pairs.into_values().collect();
            j.runs = runs.into_values().collect();
            // A checkpoint whose file the disk no longer holds is useless.
            j.pairs.retain(|c| !disk.is_dropped(c.file));
            j.runs.retain(|c| !disk.is_dropped(c.file));
            // Sort resume skips a single input prefix sized by the sum of
            // the resumed runs' counts, so run checkpoints are usable only
            // as a contiguous prefix of run indices. A gap — e.g. the
            // crash landed mid-merge, after early runs were already
            // destroyed — invalidates every checkpoint after it; the
            // stranded files fall through to orphan reclamation below.
            let prefix = j
                .runs
                .iter()
                .enumerate()
                .take_while(|(i, c)| c.index == *i as u32)
                .count();
            j.runs.truncate(prefix);
            obs::flight::record(
                obs::flight::EventKind::RecoveryDecision,
                "checkpoints trusted",
                j.pairs.len() as u64,
                j.runs.len() as u64,
            );
        }

        // Protected files: the journal itself, committed relations, and
        // the in-flight join's checkpoints. Everything else is garbage a
        // dead process could not clean up.
        let mut keep: BTreeSet<FileId> = committed;
        keep.insert(jfile);
        if let Some(j) = &cur {
            keep.extend(j.pairs.iter().map(|c| c.file));
            keep.extend(j.runs.iter().map(|c| c.file));
        }
        let mut state = RecoveredState {
            join: cur,
            ..RecoveredState::default()
        };
        let mut reclaimed: Vec<FileId> = Vec::new();
        for n in 0..disk.num_files() {
            let file = FileId(n);
            if keep.contains(&file) || disk.is_dropped(file) {
                continue;
            }
            let pages = disk.num_pages(file) as u64;
            disk.drop_file(file);
            reclaimed.push(file);
            if pages > 0 {
                state.orphan_files += 1;
                state.orphan_pages += pages;
                obs::flight::record(
                    obs::flight::EventKind::RecoveryDecision,
                    "reclaim orphan",
                    file.0 as u64,
                    pages,
                );
            }
        }
        obs::cached_counter!("storage.journal.recovered_files").add(state.orphan_files);
        obs::cached_counter!("storage.journal.recovered_pages").add(state.orphan_pages);

        let pool = BufferPool::new(config.buffer_pool_bytes, disk);
        pool.set_sorted_flush(config.sorted_flush);
        pool.set_retry_policy(config.retry);
        pool.set_replacement_policy(config.replacement);
        pool.install_journal(journal);
        // Record the reclaims so a second crash-recover cycle does not
        // re-count (or re-trust checkpoints in) the same files.
        for file in reclaimed {
            pool.journal_append(JournalRecord::TempDropped { file })?;
        }
        let db = Db {
            pool,
            catalog: RwLock::new(Catalog::new()),
            config,
        };
        Ok((db, state))
    }

    /// The buffer pool (and through it, the disk).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Read access to the catalog. Many readers may hold this at once;
    /// scope the guard tightly (clone the metas out) — holding it across
    /// a whole query would block registrations on other threads.
    pub fn catalog(&self) -> Tracked<RwLockReadGuard<'_, Catalog>> {
        lockcheck::read(&self.catalog, LockId::Catalog)
    }

    /// Write access to the catalog (registration / index bookkeeping).
    pub fn catalog_mut(&self) -> Tracked<RwLockWriteGuard<'_, Catalog>> {
        lockcheck::write(&self.catalog, LockId::Catalog)
    }

    /// A read-only handle for a serving thread.
    ///
    /// `Snapshot` is `Copy + Send`: hand one to each worker in a
    /// `thread::scope` and run the `*_at` query drivers
    /// (`select_scan_at`, `pbsm_join_at`, …) against it concurrently.
    /// The name states the contract, not an MVCC implementation: the
    /// serving layer is read-only over loaded-then-immutable relations
    /// (the paper's workload), so every read observes the same data and
    /// snapshot isolation holds trivially. Handles borrow the `Db`, so
    /// the instance cannot be torn down while any are live.
    pub fn read_snapshot(&self) -> Snapshot<'_> {
        Snapshot { db: self }
    }

    /// The configuration this instance was created with.
    pub fn config(&self) -> DbConfig {
        self.config
    }

    /// Cumulative disk counters.
    pub fn disk_stats(&self) -> DiskStats {
        self.pool.disk_stats()
    }

    /// Point-in-time resting levels of the leak-sentinel axes, read
    /// from the authoritative engine state (not the metric registry).
    /// The soak harness captures this once after warmup and holds each
    /// sentinel to it.
    pub fn telemetry_baseline(&self) -> TelemetryBaseline {
        let (_, _, mapped) = self.pool.frame_census();
        let journal_pages = self
            .pool
            .journal_file()
            .map_or(0, |f| self.pool.disk().num_pages(f) as u64);
        // Each reading in its own statement: a disk guard living to the
        // end of a struct literal would overlap the journal lock inside
        // `journal_open_intents`, inverting the declared journal → disk
        // order (the lockcheck sentinel caught exactly that here).
        let live_pages = self.pool.disk().live_pages();
        let journal_open_intents = self.pool.journal_open_intents();
        TelemetryBaseline {
            live_pages,
            pool_occupied: mapped as u64,
            journal_open_intents,
            journal_pages,
        }
    }

    /// Pages held by all live (non-dropped) files — what
    /// [`SimDisk::live_pages`] must equal when the allocator's
    /// accounting reconciles. Crash/shard audits assert
    /// `live_pages() == held_pages()` on every engine.
    pub fn held_pages(&self) -> u64 {
        let disk = self.pool.disk();
        (0..disk.num_files())
            .map(FileId)
            .filter(|f| !disk.is_dropped(*f))
            .map(|f| disk.num_pages(f) as u64)
            .sum()
    }

    /// Tears the instance down, discarding all volatile state (cached
    /// frames, catalog), and returns the disk — the crash harness's
    /// "kill -9". Feed the result to [`Db::recover`].
    pub fn into_disk(self) -> SimDisk {
        self.pool.into_disk()
    }
}

/// A read-only view of a [`Db`] for one serving thread. See
/// [`Db::read_snapshot`].
#[derive(Clone, Copy)]
pub struct Snapshot<'a> {
    db: &'a Db,
}

impl<'a> Snapshot<'a> {
    /// The shared buffer pool.
    pub fn pool(&self) -> &'a BufferPool {
        self.db.pool()
    }

    /// Read access to the shared catalog.
    pub fn catalog(&self) -> Tracked<RwLockReadGuard<'a, Catalog>> {
        self.db.catalog()
    }

    /// The configuration of the underlying instance.
    pub fn config(&self) -> DbConfig {
        self.db.config()
    }

    /// Cumulative disk counters of the underlying instance.
    pub fn disk_stats(&self) -> DiskStats {
        self.db.disk_stats()
    }

    /// The underlying handle, for the `*_at` query drivers that
    /// delegate to the existing `&Db` entry points. Deliberately not
    /// `DerefMut`-style sugar: going through `db()` keeps mutation
    /// visibly impossible at the type level in snapshot code.
    pub fn db(&self) -> &'a Db {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapFile;

    #[test]
    fn db_and_snapshot_are_shareable_across_threads() {
        // Compile-time contract of the serving layer: a `&Db` may be
        // shared across threads and snapshot handles may move to them.
        fn assert_sync<T: Sync>() {}
        fn assert_send<T: Send>() {}
        assert_sync::<Db>();
        assert_send::<Snapshot<'static>>();
        assert_sync::<Snapshot<'static>>();
    }

    #[test]
    fn replacement_policy_config_reaches_pool() {
        let cfg = DbConfig {
            replacement: ReplacementPolicy::Lru,
            ..DbConfig::with_pool_mb(2)
        };
        let db = Db::new(cfg);
        assert_eq!(db.pool().replacement_policy(), ReplacementPolicy::Lru);
        // And survives recovery on both recover paths.
        let (db2, _) = Db::recover(cfg, db.into_disk()).unwrap();
        assert_eq!(db2.pool().replacement_policy(), ReplacementPolicy::Lru);
    }

    #[test]
    fn snapshot_bridges_pool_catalog_and_config() {
        let db = Db::new(DbConfig::with_pool_mb(2));
        let snap = db.read_snapshot();
        assert_eq!(snap.config().buffer_pool_bytes, 2 * 1024 * 1024);
        assert_eq!(snap.pool().num_frames(), db.pool().num_frames());
        assert!(snap.catalog().relation("nope").is_err());
        assert_eq!(snap.disk_stats().reads, db.disk_stats().reads);
    }

    #[test]
    fn db_wires_pool_and_catalog() {
        let db = Db::new(DbConfig::with_pool_mb(2));
        assert_eq!(
            db.pool().num_frames(),
            2 * 1024 * 1024 / crate::page::PAGE_SIZE
        );
        let heap = HeapFile::create(db.pool()).unwrap();
        let oid = heap.insert(db.pool(), b"hello").unwrap();
        let mut buf = Vec::new();
        heap.fetch(db.pool(), oid, &mut buf).unwrap();
        assert_eq!(buf, b"hello");
        assert!(db.catalog().relation("nope").is_err());
    }

    #[test]
    fn sorted_flush_config_respected() {
        let cfg = DbConfig {
            sorted_flush: false,
            ..DbConfig::with_pool_mb(2)
        };
        let db = Db::new(cfg);
        assert!(!db.config().sorted_flush);
    }

    fn journaled_cfg() -> DbConfig {
        DbConfig {
            journal: true,
            ..DbConfig::with_pool_mb(2)
        }
    }

    #[test]
    fn journaled_db_claims_file_zero() {
        let db = Db::new(journaled_cfg());
        assert!(db.pool().journal_enabled());
        assert_eq!(db.pool().journal_file(), Some(FileId(0)));
        // The first user file therefore lands at id 1.
        let heap = HeapFile::create(db.pool()).unwrap();
        assert_eq!(heap.file_id(), FileId(1));
    }

    #[test]
    fn recover_reclaims_uncommitted_files_and_keeps_committed() {
        let cfg = journaled_cfg();
        let db = Db::new(cfg);
        let kept = HeapFile::create(db.pool()).unwrap();
        kept.insert(db.pool(), b"durable").unwrap();
        db.pool().commit_intent(kept.file_id()).unwrap();
        let kept_id = kept.file_id();
        // An uncommitted temp with real pages: garbage after the crash.
        let orphan = db.pool().begin_intent().unwrap();
        {
            let (_pid, mut g) = db.pool().new_page(orphan).unwrap();
            g[0] = 1;
        }
        db.pool().flush_file(orphan).unwrap();

        let mut disk = db.into_disk();
        disk.crash_now();
        let (db2, state) = Db::recover(cfg, disk).unwrap();
        assert_eq!(state.orphan_files, 1);
        assert!(state.orphan_pages >= 1);
        assert!(state.join.is_none());
        assert!(db2.pool().disk().is_dropped(orphan));
        assert!(!db2.pool().disk().is_dropped(kept_id));
        // The committed heap's data survived.
        let heap = HeapFile::open(kept_id);
        let mut buf = Vec::new();
        heap.fetch(db2.pool(), crate::Oid::new(kept_id, 0, 0), &mut buf)
            .unwrap();
        assert_eq!(buf, b"durable");
    }

    #[test]
    fn recover_surfaces_join_checkpoints() {
        let cfg = journaled_cfg();
        let db = Db::new(cfg);
        let pair_file = db.pool().begin_intent().unwrap();
        {
            let (_pid, mut g) = db.pool().new_page(pair_file).unwrap();
            g[0] = 9;
        }
        db.pool().flush_file(pair_file).unwrap();
        db.pool()
            .journal_append(JournalRecord::JoinBegin {
                join_id: 77,
                fingerprint: 77,
                partitions: 4,
            })
            .unwrap();
        db.pool()
            .journal_append(JournalRecord::PairDone {
                join_id: 77,
                pair_index: 0,
                file: pair_file,
                count: 12,
            })
            .unwrap();
        let mut disk = db.into_disk();
        disk.crash_now();
        let (db2, state) = Db::recover(cfg, disk).unwrap();
        let join = state.join.expect("in-flight join must surface");
        assert_eq!(join.join_id, 77);
        assert_eq!(join.partitions, 4);
        assert_eq!(join.pairs.len(), 1);
        assert_eq!(join.pairs[0].file, pair_file);
        assert_eq!(join.pairs[0].count, 12);
        // The checkpointed file was protected from reclamation.
        assert!(!db2.pool().disk().is_dropped(pair_file));
    }

    #[test]
    fn recovery_trusts_only_a_contiguous_run_prefix() {
        // Three run checkpoints, then run 0's file is dropped (the crash
        // landed mid-merge). The skip-a-prefix resume contract makes runs
        // 1 and 2 unusable: recovery must discard them and reclaim their
        // files as orphans instead of protecting them.
        let cfg = journaled_cfg();
        let db = Db::new(cfg);
        db.pool()
            .journal_append(JournalRecord::JoinBegin {
                join_id: 9,
                fingerprint: 9,
                partitions: 1,
            })
            .unwrap();
        let mut run_files = Vec::new();
        for idx in 0..3u32 {
            let file = db.pool().begin_intent().unwrap();
            {
                let (_pid, mut g) = db.pool().new_page(file).unwrap();
                g[0] = idx as u8 + 1;
            }
            db.pool().flush_file(file).unwrap();
            db.pool()
                .journal_append(JournalRecord::RunDone {
                    join_id: 9,
                    run_index: idx,
                    file,
                    count: 10,
                })
                .unwrap();
            run_files.push(file);
        }
        db.pool().drop_file(run_files[0]);
        let mut disk = db.into_disk();
        disk.crash_now();
        let (db2, state) = Db::recover(cfg, disk).unwrap();
        let join = state.join.expect("join must surface");
        assert!(join.runs.is_empty(), "gapped runs must be discarded");
        // The stranded run files were reclaimed, not protected.
        assert!(db2.pool().disk().is_dropped(run_files[1]));
        assert!(db2.pool().disk().is_dropped(run_files[2]));
        assert_eq!(state.orphan_files, 2);
    }

    #[test]
    fn join_end_clears_checkpoints() {
        let cfg = journaled_cfg();
        let db = Db::new(cfg);
        db.pool()
            .journal_append(JournalRecord::JoinBegin {
                join_id: 5,
                fingerprint: 5,
                partitions: 2,
            })
            .unwrap();
        db.pool()
            .journal_append(JournalRecord::JoinEnd { join_id: 5 })
            .unwrap();
        let disk = db.into_disk();
        let (_db2, state) = Db::recover(cfg, disk).unwrap();
        assert!(state.join.is_none());
    }
}
