//! The database handle tying disk, buffer pool, and catalog together.

use crate::buffer::BufferPool;
use crate::catalog::Catalog;
use crate::disk::{DiskModel, DiskStats, SimDisk};
use crate::fault::{FaultConfig, RetryPolicy};
use std::cell::{Ref, RefCell, RefMut};

/// Configuration for a [`Db`] instance.
#[derive(Clone, Copy, Debug)]
pub struct DbConfig {
    /// Buffer pool size in bytes (the paper varies 2/8/24 MB).
    pub buffer_pool_bytes: usize,
    /// Disk timing model.
    pub disk: DiskModel,
    /// SHORE-style sorted write-behind (§4.6). Default on.
    pub sorted_flush: bool,
    /// Seeded fault schedule installed at creation. `None` (the default)
    /// is a perfect device; chaos runs install one after loading data via
    /// [`SimDisk::set_faults`].
    pub faults: Option<FaultConfig>,
    /// Bounded deterministic retry budget for transient faults.
    pub retry: RetryPolicy,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_pool_bytes: 24 * 1024 * 1024,
            disk: DiskModel::default(),
            sorted_flush: true,
            faults: None,
            retry: RetryPolicy::default(),
        }
    }
}

impl DbConfig {
    /// Convenience constructor with the pool size in megabytes.
    pub fn with_pool_mb(mb: usize) -> Self {
        DbConfig {
            buffer_pool_bytes: mb * 1024 * 1024,
            ..DbConfig::default()
        }
    }
}

/// An in-process spatial database instance: simulated disk + buffer pool +
/// catalog. All structures (heap files, record files, R*-trees) operate
/// through [`Db::pool`].
pub struct Db {
    pool: BufferPool,
    catalog: RefCell<Catalog>,
    config: DbConfig,
}

impl Db {
    /// Creates an empty database.
    pub fn new(config: DbConfig) -> Self {
        let mut disk = SimDisk::new(config.disk);
        disk.set_faults(config.faults);
        let pool = BufferPool::new(config.buffer_pool_bytes, disk);
        pool.set_sorted_flush(config.sorted_flush);
        pool.set_retry_policy(config.retry);
        Db {
            pool,
            catalog: RefCell::new(Catalog::new()),
            config,
        }
    }

    /// The buffer pool (and through it, the disk).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> Ref<'_, Catalog> {
        self.catalog.borrow()
    }

    /// Write access to the catalog.
    pub fn catalog_mut(&self) -> RefMut<'_, Catalog> {
        self.catalog.borrow_mut()
    }

    /// The configuration this instance was created with.
    pub fn config(&self) -> DbConfig {
        self.config
    }

    /// Cumulative disk counters.
    pub fn disk_stats(&self) -> DiskStats {
        self.pool.disk_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapFile;

    #[test]
    fn db_wires_pool_and_catalog() {
        let db = Db::new(DbConfig::with_pool_mb(2));
        assert_eq!(
            db.pool().num_frames(),
            2 * 1024 * 1024 / crate::page::PAGE_SIZE
        );
        let heap = HeapFile::create(db.pool());
        let oid = heap.insert(db.pool(), b"hello").unwrap();
        let mut buf = Vec::new();
        heap.fetch(db.pool(), oid, &mut buf).unwrap();
        assert_eq!(buf, b"hello");
        assert!(db.catalog().relation("nope").is_err());
    }

    #[test]
    fn sorted_flush_config_respected() {
        let cfg = DbConfig {
            sorted_flush: false,
            ..DbConfig::with_pool_mb(2)
        };
        let db = Db::new(cfg);
        assert!(!db.config().sorted_flush);
    }
}
