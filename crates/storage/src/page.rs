//! Page and file identifiers.

/// Size of a disk page in bytes. SHORE's default page size in the Paradise
/// era was 8 KiB.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a file on the simulated disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Identifier of a page: a file and a page number within it.
///
/// The derived ordering is `(file, page_no)`, which is also the physical
/// layout order of the simulated disk — sorting by `PageId` therefore
/// yields a seek-minimizing write order, which is exactly what SHORE's
/// write-behind does (§4.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    pub file: FileId,
    pub page_no: u32,
}

impl PageId {
    #[inline]
    pub const fn new(file: FileId, page_no: u32) -> Self {
        PageId { file, page_no }
    }
}

/// A raw page buffer.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Allocates a zeroed page buffer.
pub fn zeroed_page() -> PageBuf {
    Box::new([0u8; PAGE_SIZE])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_orders_by_file_then_page() {
        let a = PageId::new(FileId(0), 5);
        let b = PageId::new(FileId(0), 6);
        let c = PageId::new(FileId(1), 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn zeroed_page_is_zero() {
        let p = zeroed_page();
        assert_eq!(p.len(), PAGE_SIZE);
        assert!(p.iter().all(|&b| b == 0));
    }
}
