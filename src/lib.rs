//! # pbsm — Partition Based Spatial-Merge Join
//!
//! A complete, from-scratch reproduction of *"Partition Based
//! Spatial-Merge Join"* (Patel & DeWitt, SIGMOD 1996): the PBSM algorithm,
//! its competitors (indexed nested loops and the BKS93 R\*-tree join), and
//! every substrate the paper's evaluation depends on — a geometry kernel,
//! a paged storage manager over a simulated 1996 disk, a paged R\*-tree,
//! and synthetic TIGER/Sequoia workload generators.
//!
//! This crate is a facade re-exporting the workspace members; see the
//! README for a tour and `examples/quickstart.rs` for a five-minute intro.
//!
//! ```
//! use pbsm::prelude::*;
//!
//! // An in-process database with a 4 MB buffer pool over a simulated
//! // 1996 disk.
//! let db = Db::new(DbConfig::with_pool_mb(4));
//!
//! // Tiny synthetic TIGER-like inputs (0.2 % of the paper's scale).
//! let cfg = TigerConfig::scaled(0.002);
//! load_relation(&db, "road", &tiger::road(&cfg), false).unwrap();
//! load_relation(&db, "hydro", &tiger::hydrography(&cfg), false).unwrap();
//!
//! // Find all intersecting road/hydrography feature pairs with PBSM.
//! let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
//! let out = pbsm_join(&db, &spec, &JoinConfig::for_db(&db)).unwrap();
//! assert_eq!(out.pairs.len() as u64, out.stats.results);
//! ```

pub use pbsm_datagen as datagen;
pub use pbsm_geom as geom;
pub use pbsm_join as join;
pub use pbsm_rtree as rtree;
pub use pbsm_storage as storage;

/// One-stop imports for applications.
pub mod prelude {
    pub use pbsm_datagen::sequoia::{self, SequoiaConfig};
    pub use pbsm_datagen::tiger::{self, TigerConfig};
    pub use pbsm_datagen::DatasetStats;
    pub use pbsm_geom::predicates::{RefineOptions, SpatialPredicate};
    pub use pbsm_geom::{Geometry, Point, Polygon, Polyline, Rect};
    pub use pbsm_join::inl::inl_join;
    pub use pbsm_join::loader::{build_index, load_relation, spatial_sort};
    pub use pbsm_join::pbsm::pbsm_join;
    pub use pbsm_join::rtree_join::rtree_join;
    pub use pbsm_join::{
        JoinConfig, JoinOutcome, JoinSpec, JoinStats, ShardAlgorithm, ShardError, ShardRetryPolicy,
        ShardedDb, ShardedDbConfig, ShardedJoinOutcome, TileMapScheme,
    };
    pub use pbsm_storage::tuple::SpatialTuple;
    pub use pbsm_storage::{Db, DbConfig, Oid};
}
