//! The concurrent-serving stress suite (tier-1).
//!
//! K threads replay a seeded mixed query workload — window selections
//! plus PBSM / INL / R-tree joins over synthetic TIGER and Sequoia
//! relations — through `Db::read_snapshot()` handles against one shared
//! buffer pool, and every query's **full result** (each OID, each OID
//! pair) must equal what a single-threaded oracle pass produced. Runs
//! under both replacement policies, and checks that the pool's frame
//! accounting and gauges come back to rest once all handles drop.
//!
//! Thread count comes from `PBSM_SERVE_THREADS` (default 4, min 2), so
//! `scripts/serve.sh` can crank the parallelism without a rebuild.

use pbsm::datagen::sequoia::{self, SequoiaConfig};
use pbsm::datagen::tiger::{self, TigerConfig};
use pbsm::geom::predicates::SpatialPredicate;
use pbsm::geom::Rect;
use pbsm::join::inl::inl_join_at;
use pbsm::join::loader::{build_index, load_relation};
use pbsm::join::pbsm::pbsm_join_at;
use pbsm::join::rtree_join::rtree_join_at;
use pbsm::join::select::{select_index_at, select_scan_at};
use pbsm::join::{JoinConfig, JoinSpec};
use pbsm::storage::{Db, DbConfig, Oid, ReplacementPolicy, Snapshot};

fn serve_threads() -> usize {
    std::env::var("PBSM_SERVE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(2)
}

/// One shared database: all four relations, pre-built indexes (the
/// snapshot contract), cold cache.
fn build_db(policy: ReplacementPolicy) -> Db {
    let db = Db::new(DbConfig {
        replacement: policy,
        ..DbConfig::with_pool_mb(2)
    });
    let tiger_cfg = TigerConfig::scaled(0.02);
    let sequoia_cfg = SequoiaConfig {
        scale: 0.02,
        ..SequoiaConfig::default()
    };
    let (landuse, islands) = sequoia::generate(&sequoia_cfg);
    for (name, tuples) in [
        ("road", tiger::road(&tiger_cfg)),
        ("hydrography", tiger::hydrography(&tiger_cfg)),
        ("landuse", landuse),
        ("islands", islands),
    ] {
        let meta = load_relation(&db, name, &tuples, false).unwrap();
        build_index(&db, &meta).unwrap();
    }
    db.pool().clear_cache().unwrap();
    db
}

#[derive(Clone)]
enum Query {
    Select {
        index: bool,
        relation: &'static str,
        window: Rect,
    },
    Join {
        alg: u8, // 0 = pbsm, 1 = inl, 2 = rtree
        spec: JoinSpec,
    },
}

/// A query's complete answer — compared with full `==`, not a digest,
/// so any divergence pinpoints the exact query.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Answer {
    Oids(Vec<Oid>),
    Pairs(Vec<(Oid, Oid)>),
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The soak/serve mix: 30% scans, 30% index probes, 20% PBSM, 10% INL,
/// 10% R-tree, pre-generated so every pass replays the identical list.
fn workload(seed: u64, n: usize) -> Vec<Query> {
    const RELATIONS: [&str; 4] = ["road", "hydrography", "landuse", "islands"];
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            let roll = rng.next() % 10;
            if roll < 6 {
                let relation = RELATIONS[(rng.next() % 4) as usize];
                let cx = 5.0 + (rng.next() % 900) as f64 / 10.0;
                let cy = 5.0 + (rng.next() % 900) as f64 / 10.0;
                let half = 1.0 + (rng.next() % 70) as f64 / 10.0;
                Query::Select {
                    index: roll >= 3,
                    relation,
                    window: Rect::new(cx - half, cy - half, cx + half, cy + half),
                }
            } else {
                let alg = match roll {
                    6 | 7 => 0,
                    8 => 1,
                    _ => 2,
                };
                let spec = if rng.next().is_multiple_of(2) {
                    JoinSpec::new("road", "hydrography", SpatialPredicate::Intersects)
                } else {
                    JoinSpec::new("landuse", "islands", SpatialPredicate::Contains)
                };
                Query::Join { alg, spec }
            }
        })
        .collect()
}

fn run_query(snap: Snapshot<'_>, jc: &JoinConfig, q: &Query) -> Answer {
    match q {
        Query::Select {
            index,
            relation,
            window,
        } => {
            let out = if *index {
                select_index_at(snap, relation, window).unwrap()
            } else {
                select_scan_at(snap, relation, window).unwrap()
            };
            Answer::Oids(out.oids)
        }
        Query::Join { alg, spec } => {
            let out = match alg {
                0 => pbsm_join_at(snap, spec, jc).unwrap(),
                1 => inl_join_at(snap, spec, jc).unwrap(),
                _ => rtree_join_at(snap, spec, jc).unwrap(),
            };
            Answer::Pairs(out.pairs)
        }
    }
}

/// Core of the suite: oracle pass, then K-thread replay, full-result
/// equality per query, and a clean pool afterwards.
fn stress(policy: ReplacementPolicy) {
    let threads = serve_threads();
    let db = build_db(policy);
    let jc = JoinConfig::for_db(&db);
    let queries = workload(1996, 60);

    // Single-threaded oracle over the same snapshot entry points.
    let oracle: Vec<Answer> = queries
        .iter()
        .map(|q| run_query(db.read_snapshot(), &jc, q))
        .collect();
    db.pool().clear_cache().unwrap();

    // Concurrent replay: worker w takes queries w, w+K, w+2K, …
    let answers: Vec<Option<Answer>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let db = &db;
                let jc = &jc;
                let queries = &queries;
                scope.spawn(move || {
                    let snap = db.read_snapshot();
                    (w..queries.len())
                        .step_by(threads)
                        .map(|i| (i, run_query(snap, jc, &queries[i])))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut merged: Vec<Option<Answer>> = vec![None; queries.len()];
        for h in handles {
            for (i, ans) in h.join().expect("worker panicked") {
                merged[i] = Some(ans);
            }
        }
        merged
    });

    for (i, (got, want)) in answers.iter().zip(&oracle).enumerate() {
        assert_eq!(
            got.as_ref(),
            Some(want),
            "query {i} diverged from the single-threaded oracle"
        );
    }

    // All guards dropped: no pins outstanding, every frame accounted for.
    let (free, pinned, mapped) = db.pool().frame_census();
    assert_eq!(pinned, 0, "a serving thread leaked a pin");
    assert_eq!(free + mapped, db.pool().num_frames());
}

#[test]
fn concurrent_replay_is_byte_identical_to_oracle_clock() {
    stress(ReplacementPolicy::Clock);
}

#[test]
fn concurrent_replay_is_byte_identical_to_oracle_lru() {
    stress(ReplacementPolicy::Lru);
}

#[test]
fn pool_gauges_return_to_baseline_after_db_drops() {
    pbsm_obs::reset();
    let db = build_db(ReplacementPolicy::Clock);
    let jc = JoinConfig::for_db(&db);
    for q in workload(7, 12) {
        run_query(db.read_snapshot(), &jc, &q);
    }
    // Force a metric flush so the occupied gauge reflects the warm pool.
    let occupied_warm = db.telemetry_baseline().pool_occupied;
    assert!(occupied_warm > 0, "workload should have warmed the pool");
    drop(db);
    // The pool's Drop publishes the zeroed gauges by name on this thread.
    assert_eq!(
        pbsm_obs::gauge(pbsm_obs::names::POOL_OCCUPIED).get(),
        0,
        "storage.pool.occupied must rest at 0 after the Db drops"
    );
    assert_eq!(
        pbsm_obs::gauge(pbsm_obs::names::DISK_LIVE_PAGES).get(),
        0,
        "storage.disk.live_pages must rest at 0 after the Db drops"
    );
}

#[test]
fn snapshot_handles_share_one_pool() {
    // Two snapshots of the same Db observe each other's cache effects:
    // the second identical query is warmer than the first. (Snapshots
    // are views, not copies.)
    let db = build_db(ReplacementPolicy::Clock);
    let s1 = db.read_snapshot();
    let s2 = db.read_snapshot();
    let window = Rect::new(10.0, 10.0, 30.0, 30.0);
    let h0 = db.pool().stats().hits;
    let a = select_scan_at(s1, "road", &window).unwrap();
    let h1 = db.pool().stats().hits;
    let b = select_scan_at(s2, "road", &window).unwrap();
    let h2 = db.pool().stats().hits;
    assert_eq!(a.oids, b.oids);
    assert!(
        h2 - h1 > h1 - h0,
        "second pass must hit the shared cache more"
    );
}
