//! Edge-case integration tests: degenerate inputs the paper's prose
//! glosses over but a real system must survive.

use pbsm::prelude::*;

fn polyline(coords: &[(f64, f64)]) -> SpatialTuple {
    SpatialTuple::new(
        0,
        Polyline::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).into(),
        0,
    )
}

fn db_with(left: &[SpatialTuple], right: &[SpatialTuple]) -> Db {
    let db = Db::new(DbConfig::with_pool_mb(2));
    load_relation(&db, "l", left, false).unwrap();
    load_relation(&db, "r", right, false).unwrap();
    db
}

fn all_algorithms(db: &Db) -> [JoinOutcome; 3] {
    let spec = JoinSpec::new("l", "r", SpatialPredicate::Intersects);
    let config = JoinConfig::for_db(db);
    [
        pbsm_join(db, &spec, &config).unwrap(),
        rtree_join(db, &spec, &config).unwrap(),
        inl_join(db, &spec, &config).unwrap(),
    ]
}

#[test]
fn single_tuple_each_side() {
    let db = db_with(
        &[polyline(&[(0.0, 0.0), (2.0, 2.0)])],
        &[polyline(&[(0.0, 2.0), (2.0, 0.0)])],
    );
    for out in all_algorithms(&db) {
        assert_eq!(out.stats.results, 1);
    }
}

#[test]
fn no_matches_at_all() {
    let db = db_with(
        &[polyline(&[(0.0, 0.0), (1.0, 1.0)])],
        &[polyline(&[(50.0, 50.0), (51.0, 51.0)])],
    );
    for out in all_algorithms(&db) {
        assert_eq!(out.stats.results, 0);
        assert!(out.pairs.is_empty());
    }
}

#[test]
fn identical_degenerate_features() {
    // Many copies of the same tiny feature: partition skew at its purest,
    // plus heavy duplicate candidates.
    let copies: Vec<SpatialTuple> = (0..200)
        .map(|i| {
            let mut t = polyline(&[(5.0, 5.0), (5.001, 5.001)]);
            t.key = i;
            t
        })
        .collect();
    let db = db_with(&copies, &copies);
    for out in all_algorithms(&db) {
        assert_eq!(out.stats.results, 200 * 200, "{:?}", out.stats);
    }
}

#[test]
fn axis_aligned_and_degenerate_mbrs() {
    // Horizontal and vertical lines have zero-height/width MBRs.
    let db = db_with(
        &[
            polyline(&[(0.0, 5.0), (10.0, 5.0)]), // horizontal
            polyline(&[(5.0, 0.0), (5.0, 10.0)]), // vertical
        ],
        &[
            polyline(&[(5.0, 0.0), (5.0, 10.0)]),  // crosses the horizontal
            polyline(&[(20.0, 5.0), (30.0, 5.0)]), // disjoint
        ],
    );
    for out in all_algorithms(&db) {
        // horizontal × vertical cross at (5,5); vertical × identical
        // vertical overlap collinearly. The disjoint line matches nothing.
        assert_eq!(out.stats.results, 2);
    }
}

#[test]
fn unknown_relation_is_a_clean_error() {
    let db = Db::new(DbConfig::with_pool_mb(2));
    let spec = JoinSpec::new("ghost", "phantom", SpatialPredicate::Intersects);
    let err = pbsm_join(&db, &spec, &JoinConfig::for_db(&db));
    assert!(err.is_err());
    let msg = format!("{}", err.err().unwrap());
    assert!(msg.contains("ghost"), "{msg}");
}

#[test]
fn contains_is_asymmetric() {
    use pbsm::geom::polygon::Ring;
    use pbsm::geom::Polygon;
    let square = |x0: f64, s: f64, key: u64| {
        let mut t = SpatialTuple::new(
            key,
            Polygon::simple(Ring::new(vec![
                Point::new(x0, x0),
                Point::new(x0 + s, x0),
                Point::new(x0 + s, x0 + s),
                Point::new(x0, x0 + s),
            ]))
            .into(),
            0,
        );
        t.key = key;
        t
    };
    let db = Db::new(DbConfig::with_pool_mb(2));
    load_relation(&db, "big", &[square(0.0, 10.0, 1)], false).unwrap();
    load_relation(&db, "small", &[square(2.0, 2.0, 2)], false).unwrap();
    let config = JoinConfig::for_db(&db);
    let fwd = pbsm_join(
        &db,
        &JoinSpec::new("big", "small", SpatialPredicate::Contains),
        &config,
    )
    .unwrap();
    assert_eq!(fwd.stats.results, 1);
    let rev = pbsm_join(
        &db,
        &JoinSpec::new("small", "big", SpatialPredicate::Contains),
        &config,
    )
    .unwrap();
    assert_eq!(rev.stats.results, 0);
}

#[test]
fn tiny_work_memory_floors_gracefully() {
    let cfg = TigerConfig::scaled(0.002);
    let db = Db::new(DbConfig::with_pool_mb(2));
    load_relation(&db, "l", &tiger::road(&cfg), false).unwrap();
    load_relation(&db, "r", &tiger::hydrography(&cfg), false).unwrap();
    let spec = JoinSpec::new("l", "r", SpatialPredicate::Intersects);
    // 1 KB work memory: hundreds of partitions, external sorts with
    // single-record runs — must still be correct.
    let small = JoinConfig {
        work_mem_bytes: 1024,
        ..JoinConfig::default()
    };
    let big = JoinConfig {
        work_mem_bytes: 64 << 20,
        ..JoinConfig::default()
    };
    let a = pbsm_join(&db, &spec, &small).unwrap();
    let b = pbsm_join(&db, &spec, &big).unwrap();
    assert!(a.stats.partitions > 20, "partitions {}", a.stats.partitions);
    assert_eq!(b.stats.partitions, 1);
    assert_eq!(a.pairs, b.pairs);
}

#[test]
fn swiss_cheese_tuples_survive_the_full_pipeline() {
    use pbsm::geom::polygon::Ring;
    use pbsm::geom::Polygon;
    let ring = |pts: &[(f64, f64)]| Ring::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect());
    // A park with a lake; an island in the lake (NOT contained in the
    // park's point set) and a meadow in the park (contained).
    let park = SpatialTuple::new(
        1,
        Polygon::with_holes(
            ring(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]),
            vec![ring(&[(4.0, 4.0), (7.0, 4.0), (7.0, 7.0), (4.0, 7.0)])],
        )
        .into(),
        0,
    );
    let island_in_lake = SpatialTuple::new(
        2,
        Polygon::simple(ring(&[(5.0, 5.0), (6.0, 5.0), (6.0, 6.0), (5.0, 6.0)])).into(),
        0,
    );
    let meadow = SpatialTuple::new(
        3,
        Polygon::simple(ring(&[(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)])).into(),
        0,
    );
    let db = Db::new(DbConfig::with_pool_mb(2));
    load_relation(&db, "parks", &[park], false).unwrap();
    load_relation(&db, "features", &[island_in_lake, meadow], false).unwrap();
    let out = pbsm_join(
        &db,
        &JoinSpec::new("parks", "features", SpatialPredicate::Contains),
        &JoinConfig::for_db(&db),
    )
    .unwrap();
    // Only the meadow is contained; the island sits in the hole.
    assert_eq!(out.stats.results, 1);
}
