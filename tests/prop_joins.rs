//! Property-based end-to-end tests: for arbitrary tuple sets and
//! configurations, the full PBSM pipeline (storage → filter → refinement)
//! equals a brute-force evaluation of the predicate.
//!
//! Needs the external `proptest` crate: re-add it to [dev-dependencies]
//! and run with `--features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use pbsm::prelude::*;
use proptest::prelude::*;

fn arb_polyline() -> impl Strategy<Value = Geometry> {
    prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 2..6).prop_map(|pts| {
        Geometry::Polyline(Polyline::new(
            pts.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
        ))
    })
}

fn arb_tuples(max: usize) -> impl Strategy<Value = Vec<SpatialTuple>> {
    prop::collection::vec(arb_polyline(), 1..max).prop_map(|gs| {
        gs.into_iter()
            .enumerate()
            .map(|(i, g)| SpatialTuple::new(i as u64, g, 8))
            .collect()
    })
}

fn brute(db: &Db, left: &str, right: &str) -> Vec<(Oid, Oid)> {
    use pbsm::storage::heap::HeapFile;
    let opts = RefineOptions::default();
    let load = |name: &str| -> Vec<(Oid, SpatialTuple)> {
        let meta = db.catalog().relation(name).unwrap().clone();
        HeapFile::open(meta.file)
            .scan(db.pool())
            .map(|x| {
                let (o, b) = x.unwrap();
                (o, SpatialTuple::decode(&b).unwrap())
            })
            .collect()
    };
    let mut out = Vec::new();
    for (lo, lt) in &load(left) {
        for (ro, rt) in &load(right) {
            if pbsm::join::refine::matches(lt, rt, SpatialPredicate::Intersects, &opts) {
                out.push((*lo, *ro));
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PBSM == brute force for arbitrary inputs, work memory, tile count,
    /// and mapping scheme.
    #[test]
    fn pbsm_equals_brute_force(
        ls in arb_tuples(60),
        rs in arb_tuples(60),
        work_kb in 2usize..64,
        tiles in 1usize..600,
        round_robin in any::<bool>(),
    ) {
        let db = Db::new(DbConfig::with_pool_mb(2));
        load_relation(&db, "l", &ls, false).unwrap();
        load_relation(&db, "r", &rs, false).unwrap();
        let config = JoinConfig {
            work_mem_bytes: work_kb * 1024,
            num_tiles: tiles,
            tile_map: if round_robin { TileMapScheme::RoundRobin } else { TileMapScheme::Hash },
            ..JoinConfig::default()
        };
        let spec = JoinSpec::new("l", "r", SpatialPredicate::Intersects);
        let out = pbsm_join(&db, &spec, &config).unwrap();
        prop_assert_eq!(out.pairs, brute(&db, "l", "r"));
    }

    /// The three algorithms agree pairwise on arbitrary inputs.
    #[test]
    fn algorithms_agree(
        ls in arb_tuples(40),
        rs in arb_tuples(40),
    ) {
        let db = Db::new(DbConfig::with_pool_mb(2));
        load_relation(&db, "l", &ls, false).unwrap();
        load_relation(&db, "r", &rs, false).unwrap();
        let spec = JoinSpec::new("l", "r", SpatialPredicate::Intersects);
        let config = JoinConfig { work_mem_bytes: 8 * 1024, ..JoinConfig::default() };
        let a = pbsm_join(&db, &spec, &config).unwrap().pairs;
        let b = rtree_join(&db, &spec, &config).unwrap().pairs;
        let c = inl_join(&db, &spec, &config).unwrap().pairs;
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// Tuples survive the storage layer byte-exactly under pool pressure.
    #[test]
    fn storage_roundtrip(ts in arb_tuples(80)) {
        use pbsm::storage::heap::HeapFile;
        let db = Db::new(DbConfig::with_pool_mb(2));
        load_relation(&db, "t", &ts, false).unwrap();
        let meta = db.catalog().relation("t").unwrap().clone();
        let back: Vec<SpatialTuple> = HeapFile::open(meta.file)
            .scan(db.pool())
            .map(|x| SpatialTuple::decode(&x.unwrap().1).unwrap())
            .collect();
        prop_assert_eq!(back, ts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The exact-LRU pool tracks a naive reference model over arbitrary
    /// access traces: after every touch the intrusive recency list equals
    /// the model, and the hit/miss tallies agree. (The seeded unit-test
    /// variant lives in `pbsm_storage::buffer`; this one drives arbitrary
    /// pool sizes and traces.)
    #[test]
    fn lru_pool_equals_reference_model(
        nframes in 8usize..24,
        npages in 1usize..48,
        trace in prop::collection::vec(any::<u16>(), 1..300),
    ) {
        use pbsm::storage::ReplacementPolicy;
        let db = Db::new(DbConfig {
            replacement: ReplacementPolicy::Lru,
            buffer_pool_bytes: nframes * pbsm::storage::PAGE_SIZE,
            ..DbConfig::default()
        });
        let file = db.pool().disk_mut().create_file();
        let mut pids = Vec::new();
        for _ in 0..npages {
            let (pid, _g) = db.pool().new_page(file).unwrap();
            pids.push(pid);
        }
        db.pool().clear_cache().unwrap();
        let mut model: Vec<pbsm::storage::PageId> = Vec::new();
        for step in trace {
            let pid = pids[step as usize % pids.len()];
            if let Some(pos) = model.iter().position(|p| *p == pid) {
                model.remove(pos);
            } else if model.len() == nframes {
                model.remove(0);
            }
            model.push(pid);
            drop(db.pool().get(pid).unwrap());
            prop_assert_eq!(db.pool().lru_order(), model.clone());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The two-layer sharded scatter-gather is duplicate-free and total
    /// for arbitrary inputs and shard counts: the per-shard emission lists
    /// are pairwise disjoint and concatenate to exactly the brute-force
    /// truth, for every scatter algorithm. (Keys are unique per relation,
    /// so comparing key pairs detects both a dropped and a doubled pair.)
    #[test]
    fn sharded_join_is_duplicate_free_and_total(
        ls in arb_tuples(40),
        rs in arb_tuples(40),
        k in 1usize..5,
    ) {
        let opts = RefineOptions::default();
        let mut truth = Vec::new();
        for lt in &ls {
            for rt in &rs {
                if pbsm::join::refine::matches(lt, rt, SpatialPredicate::Intersects, &opts) {
                    truth.push((lt.key, rt.key));
                }
            }
        }
        truth.sort_unstable();

        let universe = ls
            .iter()
            .chain(&rs)
            .fold(Rect::empty(), |acc, t| acc.union(&t.geom.mbr()));
        let spec = JoinSpec::new("l", "r", SpatialPredicate::Intersects);
        let config = JoinConfig { work_mem_bytes: 8 * 1024, ..JoinConfig::default() };
        let mut sdb = ShardedDb::new(ShardedDbConfig::with_shards(k), universe);
        sdb.load_relation("l", &ls, false).unwrap();
        sdb.load_relation("r", &rs, false).unwrap();
        for alg in ShardAlgorithm::ALL {
            let out = sdb.join(alg, &spec, &config).unwrap();
            prop_assert_eq!(&out.pairs, &truth);
            let mut merged: Vec<(u64, u64)> =
                out.shard_pairs.iter().flatten().copied().collect();
            merged.sort_unstable();
            prop_assert_eq!(&merged, &truth);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Transient faults with bursts inside the retry budget are invisible:
    /// PBSM under any seeded `transient_only` schedule equals brute force
    /// bit-for-bit.
    #[test]
    fn pbsm_equals_brute_force_under_transient_faults(
        ls in arb_tuples(50),
        rs in arb_tuples(50),
        seed in any::<u64>(),
    ) {
        let db = Db::new(DbConfig::with_pool_mb(2));
        load_relation(&db, "l", &ls, false).unwrap();
        load_relation(&db, "r", &rs, false).unwrap();
        let truth = brute(&db, "l", "r");
        db.pool().clear_cache().unwrap();
        db.pool().disk_mut().set_faults(Some(
            pbsm::storage::FaultConfig::transient_only(seed, 50_000),
        ));
        let spec = JoinSpec::new("l", "r", SpatialPredicate::Intersects);
        let config = JoinConfig { work_mem_bytes: 8 * 1024, ..JoinConfig::default() };
        let out = pbsm_join(&db, &spec, &config).unwrap();
        prop_assert_eq!(out.pairs, truth);
    }
}
