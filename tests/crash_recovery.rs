//! Exhaustive crash-point sweeps for the intent journal and restart
//! recovery: small enough inputs that *every single disk operation* in
//! the window can be the crash point. For each op index the workload is
//! crashed, the database recovered from the surviving disk, the work
//! resumed from the journal's checkpoints, and the final answer compared
//! against a fault-free oracle — plus an audit recovery proving nothing
//! leaked. The bench-side `crash` harness samples a handful of points on
//! realistic data; these tests trade scale for total coverage.

use pbsm::geom::predicates::SpatialPredicate;
use pbsm::geom::{Geometry, Point, Polyline};
use pbsm::join::pbsm::{pbsm_join, pbsm_join_resume};
use pbsm::join::{load_relation, JoinConfig, JoinSpec};
use pbsm::storage::extsort::{external_sort_ckpt, SortCheckpoint};
use pbsm::storage::record::RecordFile;
use pbsm::storage::tuple::SpatialTuple;
use pbsm::storage::{
    Db, DbConfig, FaultConfig, FileId, JoinResume, JournalRecord, StorageError, StorageResult,
};
use std::cmp::Ordering;

fn journaled_cfg() -> DbConfig {
    DbConfig {
        journal: true,
        ..DbConfig::with_pool_mb(2)
    }
}

/// Recovery must restore the `live_pages` accounting a dead process could
/// not maintain: the counter has to equal the pages actually held by
/// non-dropped files.
fn assert_live_pages_reconcile(db: &Db, context: &str) {
    let disk = db.pool().disk();
    let held: u64 = (0..disk.num_files())
        .map(FileId)
        .filter(|f| !disk.is_dropped(*f))
        .map(|f| disk.num_pages(f) as u64)
        .sum();
    assert_eq!(
        disk.live_pages(),
        held,
        "{context}: live-page accounting must reconcile with file contents"
    );
}

// ---------------------------------------------------------------------------
// Checkpointed external sort: crash at every op of run generation + merge.
// ---------------------------------------------------------------------------

const SORT_JOIN_ID: u64 = 42;
const SORT_WORK_MEM: usize = 256; // 32 records per run → ~10 runs

fn u64_cmp(a: &[u8], b: &[u8]) -> Ordering {
    let ka = u64::from_le_bytes(a[..8].try_into().unwrap());
    let kb = u64::from_le_bytes(b[..8].try_into().unwrap());
    ka.cmp(&kb)
}

fn sort_keys() -> Vec<u64> {
    (0..300u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

/// A journaled database holding the committed sort input.
fn build_sort_db() -> (Db, RecordFile) {
    let db = Db::new(journaled_cfg());
    let input = RecordFile::create(db.pool(), 8).unwrap();
    let mut w = input.writer(db.pool());
    for k in sort_keys() {
        w.push(&k.to_le_bytes()).unwrap();
    }
    w.finish().unwrap();
    db.pool().flush_file(input.file_id()).unwrap();
    db.pool().commit_intent(input.file_id()).unwrap();
    (db, input)
}

fn read_keys(db: &Db, rf: &RecordFile) -> Vec<u64> {
    let mut out = Vec::new();
    let mut r = rf.reader(db.pool());
    while let Some(rec) = r.next_record().unwrap() {
        out.push(u64::from_le_bytes(rec[..8].try_into().unwrap()));
    }
    out
}

/// One checkpointed sort the way the join driver runs it: bracketed by a
/// `JoinBegin`, each durable run journaled as a `RunDone`.
fn checkpointed_sort(db: &Db, input: &RecordFile) -> StorageResult<RecordFile> {
    db.pool().journal_append(JournalRecord::JoinBegin {
        join_id: SORT_JOIN_ID,
        fingerprint: SORT_JOIN_ID,
        partitions: 1,
    })?;
    let mut on_run = |idx: u32, run: &RecordFile| {
        db.pool().journal_append(JournalRecord::RunDone {
            join_id: SORT_JOIN_ID,
            run_index: idx,
            file: run.file_id(),
            count: run.count(),
        })
    };
    external_sort_ckpt(
        db.pool(),
        input,
        SORT_WORK_MEM,
        u64_cmp,
        false,
        Some(SortCheckpoint {
            resume_runs: Vec::new(),
            on_run: &mut on_run,
        }),
    )
}

/// Resumes the sort on a recovered database from whatever run checkpoints
/// survived, re-journaling them under a fresh `JoinBegin` exactly like the
/// join driver does. Returns the sorted keys and how many runs resumed.
fn resume_sort(db: &Db, input: &RecordFile, recovered: Option<&JoinResume>) -> (Vec<u64>, usize) {
    db.pool()
        .journal_append(JournalRecord::JoinBegin {
            join_id: SORT_JOIN_ID,
            fingerprint: SORT_JOIN_ID,
            partitions: 1,
        })
        .unwrap();
    let mut resume_runs = Vec::new();
    if let Some(j) = recovered.filter(|j| j.join_id == SORT_JOIN_ID) {
        for rc in &j.runs {
            db.pool()
                .journal_append(JournalRecord::RunDone {
                    join_id: SORT_JOIN_ID,
                    run_index: rc.index,
                    file: rc.file,
                    count: rc.count,
                })
                .unwrap();
            resume_runs.push(RecordFile::open(rc.file, 8, rc.count));
        }
    }
    let n_resumed = resume_runs.len();
    let mut on_run = |idx: u32, run: &RecordFile| {
        db.pool().journal_append(JournalRecord::RunDone {
            join_id: SORT_JOIN_ID,
            run_index: idx,
            file: run.file_id(),
            count: run.count(),
        })
    };
    let sorted = external_sort_ckpt(
        db.pool(),
        input,
        SORT_WORK_MEM,
        u64_cmp,
        false,
        Some(SortCheckpoint {
            resume_runs,
            on_run: &mut on_run,
        }),
    )
    .unwrap();
    let keys = read_keys(db, &sorted);
    sorted.destroy(db.pool());
    db.pool()
        .journal_append(JournalRecord::JoinEnd {
            join_id: SORT_JOIN_ID,
        })
        .unwrap();
    (keys, n_resumed)
}

#[test]
fn extsort_survives_a_crash_at_every_op() {
    let mut oracle = sort_keys();
    oracle.sort_unstable();

    // Probe: a fault-free checkpointed sort measures the op window.
    let (db, input) = build_sort_db();
    let before = db.pool().disk().total_ops();
    let sorted = checkpointed_sort(&db, &input).unwrap();
    let window = db.pool().disk().total_ops() - before;
    assert_eq!(read_keys(&db, &sorted), oracle);
    assert!(window > 10, "sort too small to sweep: {window} ops");

    let mut resumed_total = 0usize;
    for crash_op in 0..window {
        let (db, input) = build_sort_db();
        let (input_file, input_count) = (input.file_id(), input.count());
        db.pool()
            .disk_mut()
            .set_faults(Some(FaultConfig::crash_at(11, crash_op)));
        match checkpointed_sort(&db, &input) {
            // The crash can land in the sort's trailing cleanup (run
            // destroys are best-effort and swallow errors), in which case
            // the sort legitimately completes. The result must still be
            // right, and the restart path below must still come up clean.
            Ok(out) => assert_eq!(
                read_keys(&db, &out),
                oracle,
                "crash op {crash_op}: completed sort diverged"
            ),
            Err(StorageError::Crashed) => {}
            Err(e) => panic!("crash op {crash_op}: expected Crashed, got {e}"),
        }

        // Restart: recover the disk, resume from surviving run checkpoints.
        let cfg = db.config();
        let (db2, state) = Db::recover(cfg, db.into_disk()).unwrap();
        let input = RecordFile::open(input_file, 8, input_count);
        let (keys, n_resumed) = resume_sort(&db2, &input, state.join.as_ref());
        assert_eq!(keys, oracle, "crash op {crash_op}: resumed sort diverged");
        resumed_total += n_resumed;

        // Audit: a second recovery must find nothing in flight and
        // nothing to reclaim — only the committed input and the journal.
        let (db3, audit) = Db::recover(cfg, db2.into_disk()).unwrap();
        assert!(
            audit.join.is_none(),
            "crash op {crash_op}: join not retired"
        );
        assert_eq!(
            (audit.orphan_files, audit.orphan_pages),
            (0, 0),
            "crash op {crash_op}: resumed sort leaked files"
        );
        assert_live_pages_reconcile(&db3, &format!("crash op {crash_op}"));
        assert_eq!(read_keys(&db3, &input), sort_keys(), "input damaged");
    }
    assert!(
        resumed_total > 0,
        "no crash point ever resumed a durable run; the checkpoints are inert"
    );
}

// ---------------------------------------------------------------------------
// Full PBSM join: crash at every op of partition → sweep → refine.
// ---------------------------------------------------------------------------

/// Overlapping line grids: `shift` offsets the second relation so every
/// tuple intersects a handful of the other side's tuples.
fn grid_tuples(n: usize, shift: f64) -> Vec<SpatialTuple> {
    (0..n)
        .map(|i| {
            let x = (i % 12) as f64 + shift;
            let y = (i / 12) as f64 + shift;
            let geom: Geometry =
                Polyline::new(vec![Point::new(x, y), Point::new(x + 1.4, y + 1.4)]).into();
            SpatialTuple::new(i as u64, geom, 0)
        })
        .collect()
}

fn build_join_db() -> Db {
    let db = Db::new(journaled_cfg());
    load_relation(&db, "alpha", &grid_tuples(120, 0.0), false).unwrap();
    load_relation(&db, "beta", &grid_tuples(100, 0.45), false).unwrap();
    db
}

#[test]
fn pbsm_join_survives_a_crash_at_every_op() {
    let spec = JoinSpec::new("alpha", "beta", SpatialPredicate::Intersects);
    // Tiny work memory: several partition pairs (so `PairDone` checkpoints
    // land throughout the merge) and a refinement sort that spills
    // multiple runs (so `RunDone` checkpoints engage too).
    let config = JoinConfig {
        work_mem_bytes: 2048,
        num_tiles: 16,
        ..JoinConfig::default()
    };

    // Oracle + op-window probe in one fault-free journaled run.
    let db = build_join_db();
    let before = db.pool().disk().total_ops();
    let oracle = pbsm_join(&db, &spec, &config).unwrap();
    let window = db.pool().disk().total_ops() - before;
    assert!(
        oracle.stats.partitions >= 2,
        "need a multi-partition join, got {}",
        oracle.stats.partitions
    );
    assert!(!oracle.pairs.is_empty());
    assert!(window > 20, "join too small to sweep: {window} ops");

    let mut resumed_pairs = 0u64;
    let mut resumed_runs = 0u64;
    for crash_op in 0..window {
        let db = build_join_db();
        let metas = db.catalog().snapshot();
        db.pool()
            .disk_mut()
            .set_faults(Some(FaultConfig::crash_at(97, crash_op)));
        match pbsm_join(&db, &spec, &config) {
            Ok(_) => panic!("crash op {crash_op}: join completed inside the crash window"),
            Err(StorageError::Crashed) => {}
            Err(e) => panic!("crash op {crash_op}: expected Crashed, got {e}"),
        }

        // Restart: recover, re-register the (volatile) catalog, resume.
        let cfg = db.config();
        let (db2, state) = Db::recover(cfg, db.into_disk()).unwrap();
        for meta in metas {
            db2.catalog_mut().put_relation(meta);
        }
        let out = pbsm_join_resume(&db2, &spec, &config, state.join.as_ref()).unwrap();
        assert_eq!(
            out.pairs, oracle.pairs,
            "crash op {crash_op}: resumed join diverged from the oracle"
        );
        resumed_pairs += out.stats.resumed_pairs;
        resumed_runs += out.stats.resumed_runs;

        // Audit: the resumed join must retire its checkpoints and leave
        // only the committed relations and the journal on disk.
        let (db3, audit) = Db::recover(cfg, db2.into_disk()).unwrap();
        assert!(
            audit.join.is_none(),
            "crash op {crash_op}: join left in flight after success"
        );
        assert_eq!(
            (audit.orphan_files, audit.orphan_pages),
            (0, 0),
            "crash op {crash_op}: resumed join leaked files"
        );
        assert_live_pages_reconcile(&db3, &format!("crash op {crash_op}"));
    }
    // The sweep covers every op, so both checkpoint kinds must have
    // provably skipped work at least once.
    assert!(
        resumed_pairs > 0,
        "no crash point ever skipped a checkpointed partition pair"
    );
    assert!(
        resumed_runs > 0,
        "no crash point ever resumed a durable refinement run"
    );
}
