//! Integration tests for the §4.5 pre-existing-index scenarios and the
//! cost-accounting behaviour the figures rely on.

use pbsm::prelude::*;

fn setup(index_large: bool, index_small: bool) -> Db {
    let db = Db::new(DbConfig::with_pool_mb(2));
    let cfg = TigerConfig::scaled(0.008);
    let large = load_relation(&db, "road", &tiger::road(&cfg), false).unwrap();
    let small = load_relation(&db, "rail", &tiger::rail(&cfg), false).unwrap();
    if index_large {
        build_index(&db, &large).unwrap();
    }
    if index_small {
        build_index(&db, &small).unwrap();
    }
    db
}

fn names(out: &JoinOutcome) -> Vec<String> {
    out.report
        .components
        .iter()
        .map(|c| c.name.clone())
        .collect()
}

#[test]
fn rtree_join_builds_only_missing_indices() {
    let spec = JoinSpec::new("road", "rail", SpatialPredicate::Intersects);
    let cases = [
        (
            false,
            false,
            vec![
                "build index on road",
                "build index on rail",
                "join indices",
                "refinement step",
            ],
        ),
        (
            true,
            false,
            vec!["build index on rail", "join indices", "refinement step"],
        ),
        (
            false,
            true,
            vec!["build index on road", "join indices", "refinement step"],
        ),
        (true, true, vec!["join indices", "refinement step"]),
    ];
    let mut reference: Option<u64> = None;
    for (idx_l, idx_s, want) in cases {
        let db = setup(idx_l, idx_s);
        let out = rtree_join(&db, &spec, &JoinConfig::for_db(&db)).unwrap();
        assert_eq!(names(&out), want, "large={idx_l} small={idx_s}");
        match reference {
            None => reference = Some(out.stats.results),
            Some(r) => assert_eq!(out.stats.results, r),
        }
    }
}

#[test]
fn inl_probes_the_right_index() {
    let spec = JoinSpec::new("road", "rail", SpatialPredicate::Intersects);
    // No index: builds on the smaller (rail).
    let db = setup(false, false);
    let out = inl_join(&db, &spec, &JoinConfig::for_db(&db)).unwrap();
    assert_eq!(names(&out), vec!["build index on rail", "probe index"]);
    // Index only on the larger: probes it, builds nothing.
    let db = setup(true, false);
    let out2 = inl_join(&db, &spec, &JoinConfig::for_db(&db)).unwrap();
    assert_eq!(names(&out2), vec!["probe index"]);
    assert_eq!(out2.stats.results, out.stats.results);
    // Both: probes the smaller, builds nothing.
    let db = setup(true, true);
    let out3 = inl_join(&db, &spec, &JoinConfig::for_db(&db)).unwrap();
    assert_eq!(names(&out3), vec!["probe index"]);
    assert_eq!(out3.stats.results, out.stats.results);
}

#[test]
fn pbsm_ignores_indices_entirely() {
    let spec = JoinSpec::new("road", "rail", SpatialPredicate::Intersects);
    let db_no = setup(false, false);
    let a = pbsm_join(&db_no, &spec, &JoinConfig::for_db(&db_no)).unwrap();
    let db_both = setup(true, true);
    let b = pbsm_join(&db_both, &spec, &JoinConfig::for_db(&db_both)).unwrap();
    assert_eq!(names(&a), names(&b));
    assert_eq!(a.stats.results, b.stats.results);
}

#[test]
fn index_build_cost_is_attributed() {
    // The build component must carry real CPU time and its own I/O delta;
    // the probe phase must not re-pay it.
    let db = setup(false, false);
    let spec = JoinSpec::new("road", "rail", SpatialPredicate::Intersects);
    let out = inl_join(&db, &spec, &JoinConfig::for_db(&db)).unwrap();
    let build = out.report.component("build index on rail").unwrap();
    assert!(build.cpu_s > 0.0);
    let probe = out.report.component("probe index").unwrap();
    assert!(probe.cpu_s > 0.0);
    assert!(out.report.total_1996(100.0) > out.report.total_io_s());
}

#[test]
fn clustered_index_build_skips_sort_and_matches() {
    // Same data, clustered vs not: identical query answers through the
    // index, and the clustered build is registered against the catalog.
    let cfg = TigerConfig::scaled(0.01);
    let mut tuples = tiger::road(&cfg);

    let db1 = Db::new(DbConfig::with_pool_mb(4));
    let plain = load_relation(&db1, "road", &tuples, false).unwrap();
    let t1 = build_index(&db1, &plain).unwrap();

    spatial_sort(&mut tuples);
    let db2 = Db::new(DbConfig::with_pool_mb(4));
    let clustered = load_relation(&db2, "road", &tuples, true).unwrap();
    let t2 = build_index(&db2, &clustered).unwrap();

    assert_eq!(t1.num_entries(), t2.num_entries());
    // §4.4: bulk loading sorts in the non-clustered case, so "the trees
    // that are built in both the clustered and the non-clustered scenarios
    // are exactly the same" — same page counts here.
    assert_eq!(t1.num_pages(db1.pool()), t2.num_pages(db2.pool()));

    let probe = Rect::new(10.0, 10.0, 30.0, 30.0);
    let mut h1 = Vec::new();
    let mut h2 = Vec::new();
    pbsm::rtree::query::window_query(&t1, db1.pool(), &probe, &mut h1).unwrap();
    pbsm::rtree::query::window_query(&t2, db2.pool(), &probe, &mut h2).unwrap();
    assert_eq!(h1.len(), h2.len());
}
