//! Integration tests for the storage substrate's paper-relevant
//! behaviours: buffer-pool sizing effects, sorted write-behind, OID
//! physical ordering, and heap-file durability under churn.

use pbsm::geom::{Geometry, Point, Polyline};
use pbsm::storage::heap::HeapFile;
use pbsm::storage::tuple::SpatialTuple;
use pbsm::storage::{Db, DbConfig};

fn tuples(n: usize) -> Vec<SpatialTuple> {
    (0..n)
        .map(|i| {
            let x = (i % 97) as f64;
            let y = (i / 97) as f64;
            let geom: Geometry =
                Polyline::new(vec![Point::new(x, y), Point::new(x + 1.0, y + 1.0)]).into();
            SpatialTuple::new(i as u64, geom, (i % 50) as u16)
        })
        .collect()
}

#[test]
fn smaller_pool_means_more_io() {
    // The experimental axis of the whole paper: shrinking the buffer pool
    // must increase physical I/O for an identical workload.
    let run = |mb: usize| -> u64 {
        let db = Db::new(DbConfig::with_pool_mb(mb));
        let heap = HeapFile::create(db.pool()).unwrap();
        let ts = tuples(80_000);
        let mut buf = Vec::new();
        let mut oids = Vec::new();
        for t in &ts {
            t.encode_into(&mut buf);
            oids.push(heap.insert(db.pool(), &buf).unwrap());
        }
        // Random-order fetches: hit rate depends on pool size.
        let mut idx = 7usize;
        for _ in 0..80_000 {
            idx = (idx * 31 + 17) % oids.len();
            heap.fetch(db.pool(), oids[idx], &mut buf).unwrap();
        }
        db.disk_stats().reads
    };
    let small = run(2);
    let large = run(24);
    assert!(
        small > large * 2,
        "2 MB pool should read far more than 24 MB: {small} vs {large}"
    );
}

#[test]
fn oid_order_is_physical_order() {
    // §3.2 sorts candidates by OID to make fetches sequential; that only
    // works if OID order == insertion (physical) order.
    let db = Db::new(DbConfig::with_pool_mb(2));
    let heap = HeapFile::create(db.pool()).unwrap();
    let mut buf = Vec::new();
    let mut oids = Vec::new();
    for t in tuples(5_000) {
        t.encode_into(&mut buf);
        oids.push(heap.insert(db.pool(), &buf).unwrap());
    }
    let mut sorted = oids.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, oids);

    // And fetching in OID order is much cheaper than random order.
    db.pool().clear_cache().unwrap();
    let before = db.disk_stats();
    for oid in &oids {
        heap.fetch(db.pool(), *oid, &mut buf).unwrap();
    }
    let sequential = db.disk_stats().delta_since(&before);

    db.pool().clear_cache().unwrap();
    let before = db.disk_stats();
    let mut idx = 13usize;
    for _ in 0..oids.len() {
        idx = (idx * 101 + 7) % oids.len();
        heap.fetch(db.pool(), oids[idx], &mut buf).unwrap();
    }
    let random = db.disk_stats().delta_since(&before);
    assert!(
        random.io_ms > 2.0 * sequential.io_ms,
        "random fetch {:.0}ms should cost far more than sequential {:.0}ms",
        random.io_ms,
        sequential.io_ms
    );
}

#[test]
fn sorted_flush_cuts_seeks_under_identical_workload() {
    let run = |sorted: bool| -> u64 {
        let db = Db::new(DbConfig {
            sorted_flush: sorted,
            ..DbConfig::with_pool_mb(2)
        });
        let h1 = HeapFile::create(db.pool()).unwrap();
        let h2 = HeapFile::create(db.pool()).unwrap();
        let mut buf = Vec::new();
        // Interleave inserts into two files: dirty pages alternate, so the
        // naive single-victim flush seeks between files constantly.
        for t in tuples(30_000) {
            t.encode_into(&mut buf);
            let target = if t.key % 2 == 0 { &h1 } else { &h2 };
            target.insert(db.pool(), &buf).unwrap();
        }
        db.pool().flush_all().unwrap();
        db.disk_stats().seeks
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with < without,
        "sorted write-behind should seek less: {with} vs {without}"
    );
}

#[test]
fn scan_sees_all_records_under_eviction() {
    let db = Db::new(DbConfig::with_pool_mb(2));
    let heap = HeapFile::create(db.pool()).unwrap();
    let ts = tuples(10_000);
    let mut buf = Vec::new();
    for t in &ts {
        t.encode_into(&mut buf);
        heap.insert(db.pool(), &buf).unwrap();
    }
    let decoded: Vec<SpatialTuple> = heap
        .scan(db.pool())
        .map(|r| SpatialTuple::decode(&r.unwrap().1).unwrap())
        .collect();
    assert_eq!(decoded, ts);
}

#[test]
fn db_stats_are_monotonic() {
    let db = Db::new(DbConfig::with_pool_mb(2));
    let heap = HeapFile::create(db.pool()).unwrap();
    let mut prev = db.disk_stats();
    let mut buf = Vec::new();
    for t in tuples(2_000) {
        t.encode_into(&mut buf);
        heap.insert(db.pool(), &buf).unwrap();
        let now = db.disk_stats();
        assert!(now.reads >= prev.reads && now.writes >= prev.writes);
        assert!(now.io_ms >= prev.io_ms);
        prev = now;
    }
}

// ---------------------------------------------------------------------------
// Fault injection & buffer-pool pressure (the chaos-test regression guards).
// ---------------------------------------------------------------------------

use pbsm::storage::{FaultConfig, StorageError};

#[test]
fn enospc_surfaces_typed_error_without_leaking_frames() {
    // A hard 48-page device: inserts must fail with `DiskFull` — a typed
    // error, not a panic — and the pool must come out of the failure with
    // every frame either free or cleanly mapped, none pinned.
    let db = Db::new(DbConfig {
        faults: Some(FaultConfig {
            capacity_pages: Some(48),
            ..FaultConfig::default()
        }),
        ..DbConfig::with_pool_mb(2)
    });
    let heap = HeapFile::create(db.pool()).unwrap();
    let mut buf = Vec::new();
    let mut err = None;
    for t in tuples(20_000) {
        t.encode_into(&mut buf);
        match heap.insert(db.pool(), &buf) {
            Ok(_) => {}
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    assert!(
        matches!(err, Some(StorageError::DiskFull { .. })),
        "expected DiskFull, got {err:?}"
    );
    let (free, pinned, mapped) = db.pool().frame_census();
    assert_eq!(pinned, 0, "no frame may stay pinned after an I/O error");
    assert_eq!(free + mapped, db.pool().num_frames());

    // Dropping the file returns its pages: a fresh heap can insert again.
    let used = db.pool().disk().live_pages();
    assert!(used > 0);
    db.pool().drop_file(heap.file_id());
    assert_eq!(db.pool().disk().live_pages(), 0);
    let heap2 = HeapFile::create(db.pool()).unwrap();
    tuples(1)[0].encode_into(&mut buf);
    heap2.insert(db.pool(), &buf).unwrap();
}

#[test]
fn pin_heavy_pressure_is_typed_error_then_recovers() {
    // Pin every frame of a tiny pool via live page guards. One more `get`
    // must fail with `BufferPoolFull` (no deadlock, no panic); releasing
    // the guards makes the same call succeed, with a clean census.
    let db = Db::new(DbConfig::with_pool_mb(2));
    let heap = HeapFile::create(db.pool()).unwrap();
    let mut buf = Vec::new();
    let ts = tuples(60_000); // well past 2 MB of pages
    for t in &ts {
        t.encode_into(&mut buf);
        heap.insert(db.pool(), &buf).unwrap();
    }
    db.pool().flush_all().unwrap();
    let n = db.pool().num_frames();
    let file = heap.file_id();
    let pids: Vec<_> = (0..n as u32)
        .map(|p| pbsm::storage::PageId::new(file, p))
        .collect();
    let guards: Vec<_> = pids.iter().map(|&p| db.pool().get(p).unwrap()).collect();
    let (_, pinned, _) = db.pool().frame_census();
    assert_eq!(pinned, n, "every frame pinned");

    let overflow = pbsm::storage::PageId::new(file, n as u32);
    match db.pool().get(overflow) {
        Err(StorageError::BufferPoolFull) => {}
        other => panic!("expected BufferPoolFull, got {:?}", other.map(|_| ())),
    }
    drop(guards);
    db.pool().get(overflow).unwrap();
    let (free, pinned, mapped) = db.pool().frame_census();
    assert_eq!(pinned, 0);
    assert_eq!(free + mapped, n);
}

#[test]
fn transient_fault_churn_keeps_free_list_canonical() {
    // Heavy transient faults during churn, all absorbed by the bounded
    // retry; afterwards `clear_cache` must leave the free list in its
    // canonical descending order — the PR 2 determinism guarantee that
    // cold-start replacement behaviour is reproducible after any fault
    // history.
    let db = Db::new(DbConfig::with_pool_mb(2));
    let heap = HeapFile::create(db.pool()).unwrap();
    let mut buf = Vec::new();
    for t in tuples(40_000) {
        t.encode_into(&mut buf);
        heap.insert(db.pool(), &buf).unwrap();
    }
    db.pool()
        .disk_mut()
        .set_faults(Some(FaultConfig::transient_only(77, 30_000)));
    let mut oid_buf = Vec::new();
    for r in heap.scan(db.pool()) {
        let (_, bytes) = r.unwrap(); // bursts <= 2 always absorbed
        oid_buf.clear();
        oid_buf.extend_from_slice(&bytes[..bytes.len().min(8)]);
    }
    assert!(
        db.pool().disk().fault_tally().transient_reads > 0,
        "schedule must actually have fired"
    );
    db.pool().disk_mut().set_faults(None);
    db.pool().clear_cache().unwrap();
    let free = db.pool().free_list();
    let want: Vec<usize> = (0..db.pool().num_frames()).rev().collect();
    assert_eq!(free, want, "free list must be canonical descending");
}

#[test]
fn torn_write_detected_as_corruption_after_crash() {
    // End-to-end checksum story: a torn write is silent at write time and
    // *latent* while the machine stays up — the drive cache still holds
    // what the writer intended. Only a crash makes the tear real, and then
    // read-back surfaces a typed `Corruption` — never garbage tuples.
    let db = Db::new(DbConfig::with_pool_mb(2));
    let heap = HeapFile::create(db.pool()).unwrap();
    let mut buf = Vec::new();
    let mut oids = Vec::new();
    for t in tuples(30_000) {
        t.encode_into(&mut buf);
        oids.push(heap.insert(db.pool(), &buf).unwrap());
    }
    // Tear every write while flushing the dirty pool (flush_all does not
    // sync, so the tears stay pending).
    db.pool().disk_mut().set_faults(Some(FaultConfig {
        seed: 5,
        torn_write_ppm: 1_000_000,
        ..FaultConfig::default()
    }));
    db.pool().flush_all().unwrap(); // torn writes "succeed"
    db.pool().disk_mut().set_faults(None);
    db.pool().clear_cache().unwrap();
    // No crash yet: every read-back sees the intended bytes.
    for oid in &oids {
        heap.fetch(db.pool(), *oid, &mut buf)
            .expect("pending tears must be invisible before a crash");
    }
    // Crash: the pending tears hit the platters. Reopen and read back.
    db.pool().disk_mut().crash_now();
    db.pool().disk_mut().clear_crash();
    db.pool().clear_cache().unwrap();
    let mut corruptions = 0;
    for oid in &oids {
        match heap.fetch(db.pool(), *oid, &mut buf) {
            Ok(()) => {}
            Err(StorageError::Corruption(_)) => corruptions += 1,
            Err(e) => panic!("expected Corruption, got {e}"),
        }
    }
    assert!(corruptions > 0, "at least one torn page must be detected");
}

// ---------------------------------------------------------------------------
// Latch invariants (concurrent serving layer)
// ---------------------------------------------------------------------------

use pbsm::storage::PAGE_SIZE;
use std::sync::Barrier;

/// Fill a fresh file with `n` pages whose first 8 bytes encode their
/// ordinal, flush, and return the page ids cold.
fn patterned_pages(db: &Db, n: usize) -> Vec<pbsm::storage::PageId> {
    let file = db.pool().disk_mut().create_file();
    let mut pids = Vec::with_capacity(n);
    for j in 0..n {
        let (pid, mut g) = db.pool().new_page(file).unwrap();
        g[..8].copy_from_slice(&(j as u64).to_le_bytes());
        drop(g);
        pids.push(pid);
    }
    db.pool().clear_cache().unwrap();
    pids
}

fn ordinal(page: &[u8; PAGE_SIZE]) -> u64 {
    u64::from_le_bytes(page[..8].try_into().unwrap())
}

#[test]
fn two_threads_can_double_pin_the_same_page() {
    // Latch invariant: read pins take *shared* frame latches, so two
    // threads repeatedly pinning the same page never block each other out
    // of correctness — both observe the identical bytes every time, and
    // no pin leaks.
    let db = Db::new(DbConfig {
        buffer_pool_bytes: 8 * PAGE_SIZE,
        ..DbConfig::default()
    });
    let pids = patterned_pages(&db, 4);
    let barrier = Barrier::new(2);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                barrier.wait();
                for round in 0..300 {
                    let pid = pids[round % pids.len()];
                    let page = db.pool().get(pid).unwrap();
                    assert_eq!(ordinal(&page), (round % pids.len()) as u64);
                }
            });
        }
    });
    let (free, pinned, mapped) = db.pool().frame_census();
    assert_eq!(pinned, 0, "a reader leaked a pin");
    assert_eq!(free + mapped, db.pool().num_frames());
}

#[test]
fn eviction_never_races_a_pinned_frame() {
    // Latch invariant: the replacement sweep only considers frames with
    // pin == 0, and the write-back latch is taken under the state lock.
    // A thread holding a page guard keeps that frame resident and its
    // bytes stable while another thread churns the entire (tiny) pool
    // through many eviction cycles.
    let db = Db::new(DbConfig {
        buffer_pool_bytes: 8 * PAGE_SIZE,
        ..DbConfig::default()
    });
    let pids = patterned_pages(&db, 48);
    let barrier = Barrier::new(2);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let page = db.pool().get(pids[0]).unwrap();
            barrier.wait(); // pinned — release the churner
            barrier.wait(); // churn finished
            assert!(
                db.pool().resident_pages().contains(&pids[0]),
                "the pinned page must have survived every eviction sweep"
            );
            assert_eq!(ordinal(&page), 0, "pinned frame bytes changed under churn");
        });
        scope.spawn(|| {
            barrier.wait();
            for _ in 0..6 {
                for (j, pid) in pids.iter().enumerate().skip(1) {
                    let page = db.pool().get(*pid).unwrap();
                    assert_eq!(ordinal(&page), j as u64);
                }
            }
            barrier.wait();
        });
    });
    let (_, pinned, _) = db.pool().frame_census();
    assert_eq!(pinned, 0);
}

#[test]
fn transient_faults_are_absorbed_under_concurrent_readers() {
    // `with_retry` recovery with the pool under concurrent read load: a
    // seeded transient-only schedule (bursts inside the default retry
    // budget) fires on the shared disk while four threads fault pages in
    // and out of a pool far smaller than the working set. Every read must
    // succeed with the right bytes, and the frame accounting must be
    // clean afterwards.
    let db = Db::new(DbConfig {
        buffer_pool_bytes: 8 * PAGE_SIZE,
        ..DbConfig::default()
    });
    let pids = patterned_pages(&db, 48);
    db.pool()
        .disk_mut()
        .set_faults(Some(FaultConfig::transient_only(91, 30_000)));
    std::thread::scope(|scope| {
        let (db, pids) = (&db, &pids);
        for w in 0..4usize {
            scope.spawn(move || {
                for round in 0..8 {
                    for j in ((w + round) % 4..pids.len()).step_by(4) {
                        let page = db.pool().get(pids[j]).unwrap();
                        assert_eq!(ordinal(&page), j as u64);
                    }
                }
            });
        }
    });
    assert!(
        db.pool().disk().fault_tally().transient_reads > 0,
        "the fault schedule must actually have fired"
    );
    db.pool().disk_mut().set_faults(None);
    let (free, pinned, mapped) = db.pool().frame_census();
    assert_eq!(pinned, 0);
    assert_eq!(free + mapped, db.pool().num_frames());
}
