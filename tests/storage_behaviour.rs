//! Integration tests for the storage substrate's paper-relevant
//! behaviours: buffer-pool sizing effects, sorted write-behind, OID
//! physical ordering, and heap-file durability under churn.

use pbsm::geom::{Geometry, Point, Polyline};
use pbsm::storage::heap::HeapFile;
use pbsm::storage::tuple::SpatialTuple;
use pbsm::storage::{Db, DbConfig};

fn tuples(n: usize) -> Vec<SpatialTuple> {
    (0..n)
        .map(|i| {
            let x = (i % 97) as f64;
            let y = (i / 97) as f64;
            let geom: Geometry =
                Polyline::new(vec![Point::new(x, y), Point::new(x + 1.0, y + 1.0)]).into();
            SpatialTuple::new(i as u64, geom, (i % 50) as u16)
        })
        .collect()
}

#[test]
fn smaller_pool_means_more_io() {
    // The experimental axis of the whole paper: shrinking the buffer pool
    // must increase physical I/O for an identical workload.
    let run = |mb: usize| -> u64 {
        let db = Db::new(DbConfig::with_pool_mb(mb));
        let heap = HeapFile::create(db.pool());
        let ts = tuples(80_000);
        let mut buf = Vec::new();
        let mut oids = Vec::new();
        for t in &ts {
            t.encode_into(&mut buf);
            oids.push(heap.insert(db.pool(), &buf).unwrap());
        }
        // Random-order fetches: hit rate depends on pool size.
        let mut idx = 7usize;
        for _ in 0..80_000 {
            idx = (idx * 31 + 17) % oids.len();
            heap.fetch(db.pool(), oids[idx], &mut buf).unwrap();
        }
        db.disk_stats().reads
    };
    let small = run(2);
    let large = run(24);
    assert!(
        small > large * 2,
        "2 MB pool should read far more than 24 MB: {small} vs {large}"
    );
}

#[test]
fn oid_order_is_physical_order() {
    // §3.2 sorts candidates by OID to make fetches sequential; that only
    // works if OID order == insertion (physical) order.
    let db = Db::new(DbConfig::with_pool_mb(2));
    let heap = HeapFile::create(db.pool());
    let mut buf = Vec::new();
    let mut oids = Vec::new();
    for t in tuples(5_000) {
        t.encode_into(&mut buf);
        oids.push(heap.insert(db.pool(), &buf).unwrap());
    }
    let mut sorted = oids.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, oids);

    // And fetching in OID order is much cheaper than random order.
    db.pool().clear_cache().unwrap();
    let before = db.disk_stats();
    for oid in &oids {
        heap.fetch(db.pool(), *oid, &mut buf).unwrap();
    }
    let sequential = db.disk_stats().delta_since(&before);

    db.pool().clear_cache().unwrap();
    let before = db.disk_stats();
    let mut idx = 13usize;
    for _ in 0..oids.len() {
        idx = (idx * 101 + 7) % oids.len();
        heap.fetch(db.pool(), oids[idx], &mut buf).unwrap();
    }
    let random = db.disk_stats().delta_since(&before);
    assert!(
        random.io_ms > 2.0 * sequential.io_ms,
        "random fetch {:.0}ms should cost far more than sequential {:.0}ms",
        random.io_ms,
        sequential.io_ms
    );
}

#[test]
fn sorted_flush_cuts_seeks_under_identical_workload() {
    let run = |sorted: bool| -> u64 {
        let db = Db::new(DbConfig {
            sorted_flush: sorted,
            ..DbConfig::with_pool_mb(2)
        });
        let h1 = HeapFile::create(db.pool());
        let h2 = HeapFile::create(db.pool());
        let mut buf = Vec::new();
        // Interleave inserts into two files: dirty pages alternate, so the
        // naive single-victim flush seeks between files constantly.
        for t in tuples(30_000) {
            t.encode_into(&mut buf);
            let target = if t.key % 2 == 0 { &h1 } else { &h2 };
            target.insert(db.pool(), &buf).unwrap();
        }
        db.pool().flush_all().unwrap();
        db.disk_stats().seeks
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with < without,
        "sorted write-behind should seek less: {with} vs {without}"
    );
}

#[test]
fn scan_sees_all_records_under_eviction() {
    let db = Db::new(DbConfig::with_pool_mb(2));
    let heap = HeapFile::create(db.pool());
    let ts = tuples(10_000);
    let mut buf = Vec::new();
    for t in &ts {
        t.encode_into(&mut buf);
        heap.insert(db.pool(), &buf).unwrap();
    }
    let decoded: Vec<SpatialTuple> = heap
        .scan(db.pool())
        .map(|r| SpatialTuple::decode(&r.unwrap().1).unwrap())
        .collect();
    assert_eq!(decoded, ts);
}

#[test]
fn db_stats_are_monotonic() {
    let db = Db::new(DbConfig::with_pool_mb(2));
    let heap = HeapFile::create(db.pool());
    let mut prev = db.disk_stats();
    let mut buf = Vec::new();
    for t in tuples(2_000) {
        t.encode_into(&mut buf);
        heap.insert(db.pool(), &buf).unwrap();
        let now = db.disk_stats();
        assert!(now.reads >= prev.reads && now.writes >= prev.writes);
        assert!(now.io_ms >= prev.io_ms);
        prev = now;
    }
}
