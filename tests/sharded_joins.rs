//! Sharded scatter-gather joins against the unsharded single-engine
//! oracle: the two-layer shard assignment must be **duplicate-free**
//! (no pair emitted by two shards) and **total** (every oracle pair
//! emitted by exactly one shard) for every algorithm and shard count,
//! on both the TIGER and Sequoia workloads — and a shard killed
//! mid-join must be recovered and resumed without disturbing its
//! siblings or changing the answer.

use pbsm::geom::predicates::SpatialPredicate;
use pbsm::geom::Rect;
use pbsm::join::loader::{extract_entries, load_relation};
use pbsm::join::pbsm::pbsm_join;
use pbsm::join::shard::{ShardAlgorithm, ShardedDb, ShardedDbConfig};
use pbsm::join::{inl::inl_join_at, rtree_join::rtree_join_at};
use pbsm::join::{JoinConfig, JoinSpec};
use pbsm::prelude::{sequoia, tiger, SequoiaConfig, TigerConfig};
use pbsm::storage::tuple::SpatialTuple;
use pbsm::storage::{Db, DbConfig, FaultConfig, StorageError};
use std::collections::BTreeMap;

fn universe_of(sets: &[&[SpatialTuple]]) -> Rect {
    sets.iter()
        .flat_map(|s| s.iter())
        .fold(Rect::empty(), |acc, t| acc.union(&t.geom.mbr()))
}

/// The unsharded oracle: one engine, PBSM, results as global key pairs.
fn oracle_keys(
    left: &[SpatialTuple],
    right: &[SpatialTuple],
    spec: &JoinSpec,
    config: &JoinConfig,
) -> Vec<(u64, u64)> {
    let db = Db::new(DbConfig::with_pool_mb(2));
    let lm = load_relation(&db, &spec.left, left, false).unwrap();
    let rm = load_relation(&db, &spec.right, right, false).unwrap();
    let out = pbsm_join(&db, spec, config).unwrap();
    let map = |meta, tuples: &[SpatialTuple]| -> BTreeMap<u64, u64> {
        extract_entries(&db, meta)
            .unwrap()
            .iter()
            .zip(tuples)
            .map(|((_, oid), t)| (oid.raw(), t.key))
            .collect()
    };
    let (lmap, rmap) = (map(&lm, left), map(&rm, right));
    let mut pairs: Vec<(u64, u64)> = out
        .pairs
        .iter()
        .map(|(a, b)| (lmap[&a.raw()], rmap[&b.raw()]))
        .collect();
    pairs.sort_unstable();
    pairs
}

fn sharded(k: usize, spec: &JoinSpec, left: &[SpatialTuple], right: &[SpatialTuple]) -> ShardedDb {
    let mut sdb = ShardedDb::new(ShardedDbConfig::with_shards(k), universe_of(&[left, right]));
    sdb.load_relation(&spec.left, left, false).unwrap();
    sdb.load_relation(&spec.right, right, false).unwrap();
    sdb
}

/// Duplicate-free + total, asserted structurally: the per-shard emission
/// lists are pairwise disjoint and their union is exactly the oracle.
fn assert_partition_exact(
    sdb: &mut ShardedDb,
    spec: &JoinSpec,
    config: &JoinConfig,
    oracle: &[(u64, u64)],
    context: &str,
) {
    for alg in ShardAlgorithm::ALL {
        let out = sdb.join(alg, spec, config).unwrap();
        assert_eq!(out.pairs, oracle, "{context}: {} merged result", alg.key());
        // Totality + duplicate-freeness: every oracle pair is emitted by
        // exactly one shard, so the concatenated per-shard lists re-sort
        // to the oracle with no pair missing and none doubled.
        let mut merged: Vec<(u64, u64)> = out.shard_pairs.iter().flatten().copied().collect();
        merged.sort_unstable();
        assert_eq!(merged, oracle, "{context}: {} shard union", alg.key());
        let emitted: u64 = out.shards.iter().map(|s| s.emitted_pairs).sum();
        assert_eq!(emitted, oracle.len() as u64, "{context}: {}", alg.key());
    }
}

#[test]
fn tiger_slice_partition_is_duplicate_free_and_total() {
    let cfg = TigerConfig::scaled(0.01);
    let road = tiger::road(&cfg);
    let hydro = tiger::hydrography(&cfg);
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let config = JoinConfig {
        work_mem_bytes: 256 * 1024,
        ..JoinConfig::default()
    };
    let oracle = oracle_keys(&road, &hydro, &spec, &config);
    assert!(!oracle.is_empty(), "degenerate tiger slice");
    for k in [2, 3, 4] {
        let mut sdb = sharded(k, &spec, &road, &hydro);
        assert_partition_exact(&mut sdb, &spec, &config, &oracle, &format!("tiger k={k}"));
    }
}

#[test]
fn sequoia_slice_partition_is_duplicate_free_and_total() {
    let cfg = SequoiaConfig {
        scale: 0.02,
        ..SequoiaConfig::default()
    };
    let (polys, islands) = sequoia::generate(&cfg);
    let spec = JoinSpec::new("landuse", "islands", SpatialPredicate::Contains);
    let config = JoinConfig {
        work_mem_bytes: 256 * 1024,
        ..JoinConfig::default()
    };
    let oracle = oracle_keys(&polys, &islands, &spec, &config);
    assert!(!oracle.is_empty(), "degenerate sequoia slice");
    for k in [2, 3] {
        let mut sdb = sharded(k, &spec, &polys, &islands);
        assert_partition_exact(&mut sdb, &spec, &config, &oracle, &format!("sequoia k={k}"));
    }
}

/// The snapshot-path index drivers never auto-build; a genuinely missing
/// index surfaces the typed `UnknownRelation("<name> (index)")` error.
/// (The sharded load path prebuilds per-shard indexes at load time
/// precisely so a scatter never hits this.)
#[test]
fn missing_index_error_is_typed_and_named() {
    let cfg = TigerConfig::scaled(0.002);
    let road = tiger::road(&cfg);
    let hydro = tiger::hydrography(&cfg);
    let db = Db::new(DbConfig::with_pool_mb(2));
    load_relation(&db, "road", &road, false).unwrap();
    load_relation(&db, "hydro", &hydro, false).unwrap();
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let config = JoinConfig::for_db(&db);

    match inl_join_at(db.read_snapshot(), &spec, &config).map(|_| ()) {
        Err(StorageError::UnknownRelation(name)) => {
            assert!(name.ends_with("(index)"), "got {name:?}")
        }
        other => panic!("expected UnknownRelation(.. (index)), got {other:?}"),
    }
    match rtree_join_at(db.read_snapshot(), &spec, &config).map(|_| ()) {
        Err(StorageError::UnknownRelation(name)) => {
            assert!(name.ends_with("(index)"), "got {name:?}")
        }
        other => panic!("expected UnknownRelation(.. (index)), got {other:?}"),
    }
}

/// The sharded load path prebuilds every shard's indexes, so the index
/// drivers work through snapshots immediately — no scatter-time builds.
#[test]
fn sharded_load_prebuilds_indexes_for_snapshot_drivers() {
    let cfg = TigerConfig::scaled(0.005);
    let road = tiger::road(&cfg);
    let hydro = tiger::hydrography(&cfg);
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let sdb = sharded(3, &spec, &road, &hydro);
    let config = JoinConfig {
        work_mem_bytes: 256 * 1024,
        ..JoinConfig::default()
    };
    for s in 0..sdb.num_shards() {
        let db = sdb.shard_db(s).unwrap();
        // Empty shards are skipped by the scatter; loaded ones must
        // serve both index drivers directly.
        let loaded = db.catalog().relation("road").unwrap().cardinality > 0
            && db.catalog().relation("hydro").unwrap().cardinality > 0;
        if loaded {
            inl_join_at(db.read_snapshot(), &spec, &config).unwrap();
            rtree_join_at(db.read_snapshot(), &spec, &config).unwrap();
        }
    }
}

/// Kill one shard mid-join: the coordinator recovers and resumes it,
/// siblings are untouched, the answer matches the oracle, checkpointed
/// work is actually reused, and every shard's allocator reconciles.
#[test]
fn single_shard_crash_is_contained_with_checkpoint_reuse() {
    let cfg = TigerConfig::scaled(0.01);
    let road = tiger::road(&cfg);
    let hydro = tiger::hydrography(&cfg);
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    // Small work memory → several partitions per shard → checkpoints
    // live through the refinement tail where the crash lands.
    let config = JoinConfig {
        work_mem_bytes: 64 * 1024,
        num_tiles: 256,
        ..JoinConfig::default()
    };
    let oracle = oracle_keys(&road, &hydro, &spec, &config);
    let victim = 0;

    // Probe the victim's op window on an identical build.
    let mut probe = sharded(3, &spec, &road, &hydro);
    let ops0 = probe.shard_db(victim).unwrap().pool().disk().total_ops();
    probe.join(ShardAlgorithm::Pbsm, &spec, &config).unwrap();
    let window = probe.shard_db(victim).unwrap().pool().disk().total_ops() - ops0;
    assert!(window > 10, "victim did almost no I/O");

    // Crash at 90% of the window: inside refinement, after several
    // partition pairs have checkpointed but before their candidate
    // files were consumed — a real partial resume.
    let mut sdb = sharded(3, &spec, &road, &hydro);
    let baselines = sdb.telemetry_baselines();
    sdb.shard_db(victim)
        .unwrap()
        .pool()
        .disk_mut()
        .set_faults(Some(FaultConfig::crash_at(13, 1 + (window - 1) * 9 / 10)));
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = sdb.join(ShardAlgorithm::Pbsm, &spec, &config);
    std::panic::set_hook(prev_hook);
    let out = out.unwrap();

    assert_eq!(out.pairs, oracle, "contained crash changed the answer");
    assert!(out.shards[victim].crash_contained);
    assert!(
        out.shards[victim].join.resumed_pairs > 0,
        "the 90% crash point must land a real checkpoint resume"
    );
    for (i, s) in out.shards.iter().enumerate() {
        if i != victim {
            assert!(!s.crash_contained, "sibling {i} was disturbed");
        }
    }

    // Every shard's gauges are back at baseline and its allocator
    // reconciles; an audit recovery finds no join in flight.
    for (s, base) in baselines.iter().enumerate().take(sdb.num_shards()) {
        let db = sdb.shard_db(s).unwrap();
        let tb = db.telemetry_baseline();
        assert_eq!(tb.live_pages, db.held_pages(), "shard {s} allocator");
        assert_eq!(
            tb.live_pages - tb.journal_pages,
            base.live_pages - base.journal_pages,
            "shard {s} durable pages"
        );
        assert_eq!(
            tb.journal_open_intents, base.journal_open_intents,
            "shard {s} open intents"
        );
    }
    for (s, db) in sdb.into_dbs().into_iter().enumerate() {
        let (_, audit) = Db::recover(db.config(), db.into_disk()).unwrap();
        assert!(audit.join.is_none(), "shard {s}: join still in flight");
    }
}

/// Transient faults on one shard are absorbed by the per-shard retry
/// policy layered over the buffer pool's own retry — no crash, no
/// divergence.
#[test]
fn transient_faults_on_one_shard_are_absorbed() {
    let cfg = TigerConfig::scaled(0.005);
    let road = tiger::road(&cfg);
    let hydro = tiger::hydrography(&cfg);
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let config = JoinConfig {
        work_mem_bytes: 128 * 1024,
        ..JoinConfig::default()
    };
    let oracle = oracle_keys(&road, &hydro, &spec, &config);
    let mut sdb = sharded(3, &spec, &road, &hydro);
    sdb.shard_db(1)
        .unwrap()
        .pool()
        .disk_mut()
        .set_faults(Some(FaultConfig::transient_only(42, 20_000)));
    for alg in ShardAlgorithm::ALL {
        let out = sdb.join(alg, &spec, &config).unwrap();
        assert_eq!(out.pairs, oracle, "{} under transient faults", alg.key());
        assert_eq!(out.crashes_contained(), 0);
    }
}
