//! Cross-algorithm integration tests: PBSM, the R-tree join, and indexed
//! nested loops are different plans for the same query, so on every
//! workload, configuration, and buffer-pool size they must return
//! identical answers — and agree with a brute-force ground truth.

use pbsm::prelude::*;
use pbsm::storage::heap::HeapFile;

fn ground_truth(db: &Db, left: &str, right: &str, pred: SpatialPredicate) -> Vec<(Oid, Oid)> {
    let opts = RefineOptions::default();
    let load = |name: &str| -> Vec<(Oid, SpatialTuple)> {
        let meta = db.catalog().relation(name).unwrap().clone();
        HeapFile::open(meta.file)
            .scan(db.pool())
            .map(|x| {
                let (o, b) = x.unwrap();
                (o, SpatialTuple::decode(&b).unwrap())
            })
            .collect()
    };
    let l = load(left);
    let r = load(right);
    let mut out = Vec::new();
    for (lo, lt) in &l {
        for (ro, rt) in &r {
            if pbsm::join::refine::matches(lt, rt, pred, &opts) {
                out.push((*lo, *ro));
            }
        }
    }
    out.sort_unstable();
    out
}

fn setup_tiger(pool_mb: usize, clustered: bool) -> Db {
    let db = Db::new(DbConfig::with_pool_mb(pool_mb));
    let cfg = TigerConfig::scaled(0.01);
    let mut road = tiger::road(&cfg);
    let mut hydro = tiger::hydrography(&cfg);
    if clustered {
        spatial_sort(&mut road);
        spatial_sort(&mut hydro);
    }
    load_relation(&db, "road", &road, clustered).unwrap();
    load_relation(&db, "hydro", &hydro, clustered).unwrap();
    db
}

#[test]
fn all_algorithms_agree_on_tiger() {
    let db = setup_tiger(2, false);
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let config = JoinConfig {
        work_mem_bytes: 128 * 1024,
        ..JoinConfig::default()
    };

    let truth = ground_truth(&db, "road", "hydro", SpatialPredicate::Intersects);
    assert!(!truth.is_empty(), "degenerate workload");

    let a = pbsm_join(&db, &spec, &config).unwrap();
    assert_eq!(a.pairs, truth, "PBSM");
    let b = rtree_join(&db, &spec, &config).unwrap();
    assert_eq!(b.pairs, truth, "R-tree join");
    let c = inl_join(&db, &spec, &config).unwrap();
    assert_eq!(c.pairs, truth, "INL");
}

#[test]
fn agreement_across_buffer_pool_sizes() {
    // The paper's 2/8/24 MB axis: answers must not depend on pool size.
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let mut reference: Option<Vec<(Oid, Oid)>> = None;
    for pool_mb in [2usize, 8, 24] {
        let db = setup_tiger(pool_mb, false);
        let out = pbsm_join(&db, &spec, &JoinConfig::for_db(&db)).unwrap();
        match &reference {
            None => reference = Some(out.pairs),
            Some(want) => assert_eq!(&out.pairs, want, "pool {pool_mb} MB"),
        }
    }
}

#[test]
fn clustering_does_not_change_results() {
    // Clustered inputs change OIDs (physical order), so compare surrogate
    // key pairs instead.
    let key_pairs = |db: &Db, pairs: &[(Oid, Oid)]| -> Vec<(u64, u64)> {
        let mut buf = Vec::new();
        let road = HeapFile::open(db.catalog().relation("road").unwrap().file);
        let hydro = HeapFile::open(db.catalog().relation("hydro").unwrap().file);
        let mut out: Vec<(u64, u64)> = pairs
            .iter()
            .map(|(a, b)| {
                road.fetch(db.pool(), *a, &mut buf).unwrap();
                let ka = SpatialTuple::decode(&buf).unwrap().key;
                hydro.fetch(db.pool(), *b, &mut buf).unwrap();
                let kb = SpatialTuple::decode(&buf).unwrap().key;
                (ka, kb)
            })
            .collect();
        out.sort_unstable();
        out
    };
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);

    let plain_db = setup_tiger(4, false);
    let plain = pbsm_join(&plain_db, &spec, &JoinConfig::for_db(&plain_db)).unwrap();
    let clustered_db = setup_tiger(4, true);
    let clustered = pbsm_join(&clustered_db, &spec, &JoinConfig::for_db(&clustered_db)).unwrap();
    assert_eq!(
        key_pairs(&plain_db, &plain.pairs),
        key_pairs(&clustered_db, &clustered.pairs)
    );
}

#[test]
fn sequoia_containment_all_algorithms() {
    let db = Db::new(DbConfig::with_pool_mb(4));
    let (landuse, islands) = sequoia::generate(&SequoiaConfig::scaled(0.01));
    load_relation(&db, "landuse", &landuse, false).unwrap();
    load_relation(&db, "islands", &islands, false).unwrap();
    let spec = JoinSpec::new("landuse", "islands", SpatialPredicate::Contains);
    let config = JoinConfig {
        work_mem_bytes: 256 * 1024,
        ..JoinConfig::default()
    };

    let truth = ground_truth(&db, "landuse", "islands", SpatialPredicate::Contains);
    assert!(!truth.is_empty());
    assert_eq!(pbsm_join(&db, &spec, &config).unwrap().pairs, truth, "PBSM");
    assert_eq!(
        rtree_join(&db, &spec, &config).unwrap().pairs,
        truth,
        "R-tree"
    );
    assert_eq!(inl_join(&db, &spec, &config).unwrap().pairs, truth, "INL");
}

#[test]
fn extensions_preserve_answers() {
    let db = setup_tiger(2, false);
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let base = JoinConfig {
        work_mem_bytes: 64 * 1024,
        ..JoinConfig::default()
    };
    let want = pbsm_join(&db, &spec, &base).unwrap().pairs;

    let repart = JoinConfig {
        dynamic_repartition: true,
        ..base.clone()
    };
    assert_eq!(pbsm_join(&db, &spec, &repart).unwrap().pairs, want);

    let par = JoinConfig {
        merge_threads: 3,
        ..base.clone()
    };
    assert_eq!(pbsm_join(&db, &spec, &par).unwrap().pairs, want);

    let rr = JoinConfig {
        tile_map: TileMapScheme::RoundRobin,
        ..base.clone()
    };
    assert_eq!(pbsm_join(&db, &spec, &rr).unwrap().pairs, want);

    for tiles in [16usize, 256, 4096] {
        let t = JoinConfig {
            num_tiles: tiles,
            ..base.clone()
        };
        assert_eq!(
            pbsm_join(&db, &spec, &t).unwrap().pairs,
            want,
            "{tiles} tiles"
        );
    }
}

#[test]
fn sorted_flush_off_still_correct() {
    let db = Db::new(DbConfig {
        sorted_flush: false,
        ..DbConfig::with_pool_mb(2)
    });
    let cfg = TigerConfig::scaled(0.005);
    load_relation(&db, "road", &tiger::road(&cfg), false).unwrap();
    load_relation(&db, "hydro", &tiger::hydrography(&cfg), false).unwrap();
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let out = pbsm_join(&db, &spec, &JoinConfig::for_db(&db)).unwrap();
    let truth = ground_truth(&db, "road", "hydro", SpatialPredicate::Intersects);
    assert_eq!(out.pairs, truth);
}

// ---------------------------------------------------------------------------
// Fault injection: joins under a seeded fault schedule must either match
// the fault-free ground truth bit-for-bit or fail with a clean typed error.
// ---------------------------------------------------------------------------

use pbsm::storage::FaultConfig;

#[test]
fn pbsm_matches_oracle_under_absorbable_transient_faults() {
    // `transient_only` bursts are at most 2 consecutive failures; the
    // pool's default retry budget is 4 attempts, so every fault must be
    // absorbed and the answer must equal the ground truth exactly.
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let config = JoinConfig {
        work_mem_bytes: 64 * 1024, // force partitioning + spill I/O
        ..JoinConfig::default()
    };
    let mut fired = 0u64;
    for seed in [13u64, 1996, 271_828] {
        let db = setup_tiger(2, false);
        let truth = ground_truth(&db, "road", "hydro", SpatialPredicate::Intersects);
        db.pool().clear_cache().unwrap(); // cold start: faults see real I/O
        db.pool()
            .disk_mut()
            .set_faults(Some(FaultConfig::transient_only(seed, 20_000)));
        let out = pbsm_join(&db, &spec, &config).unwrap();
        assert_eq!(out.pairs, truth, "seed {seed}");
        fired += db.pool().disk().fault_tally().total();
    }
    assert!(fired > 0, "schedules must actually have injected faults");
}

#[test]
fn all_algorithms_survive_transient_faults_identically() {
    let db = setup_tiger(2, false);
    let truth = ground_truth(&db, "road", "hydro", SpatialPredicate::Intersects);
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let config = JoinConfig {
        work_mem_bytes: 64 * 1024,
        ..JoinConfig::default()
    };
    for (name, run) in [
        ("pbsm", pbsm_join as fn(&Db, &JoinSpec, &JoinConfig) -> _),
        ("rtree", rtree_join),
        ("inl", inl_join),
    ] {
        db.pool().clear_cache().unwrap();
        db.pool()
            .disk_mut()
            .set_faults(Some(FaultConfig::transient_only(4242, 20_000)));
        let out = run(&db, &spec, &config).unwrap();
        db.pool().disk_mut().set_faults(None);
        assert_eq!(out.pairs, truth, "{name}");
    }
}

#[test]
fn pbsm_enospc_fails_clean_and_destroys_temp_files() {
    // A capacity budget with almost no headroom: every recovery attempt
    // must hit the wall, the driver must surface `DiskFull` as a typed
    // error (never a panic), and — the cleanup-on-error contract — every
    // temp file of every failed attempt must be destroyed, leaving the
    // disk at its pre-join footprint with no pinned frames.
    let db = setup_tiger(2, false);
    db.pool().flush_all().unwrap();
    let baseline = db.pool().disk().live_pages();
    db.pool().disk_mut().set_faults(Some(FaultConfig {
        capacity_pages: Some(baseline + 4),
        ..FaultConfig::default()
    }));
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let config = JoinConfig {
        work_mem_bytes: 64 * 1024,
        ..JoinConfig::default()
    };
    let err = match pbsm_join(&db, &spec, &config) {
        Ok(_) => panic!("join must fail under a {}-page headroom", 4),
        Err(e) => e,
    };
    assert!(err.is_disk_full(), "expected DiskFull, got {err}");
    assert_eq!(
        db.pool().disk().live_pages(),
        baseline,
        "failed attempts must destroy all their temp files"
    );
    let (free, pinned, mapped) = db.pool().frame_census();
    assert_eq!(pinned, 0);
    assert_eq!(free + mapped, db.pool().num_frames());

    // With the budget lifted the same database still answers correctly.
    db.pool().disk_mut().set_faults(None);
    let truth = ground_truth(&db, "road", "hydro", SpatialPredicate::Intersects);
    assert_eq!(pbsm_join(&db, &spec, &config).unwrap().pairs, truth);
}

#[test]
fn pbsm_degrades_through_probabilistic_enospc() {
    // Probabilistic ENOSPC: each attempt redraws the allocation stream, so
    // the bounded degradation loop gets fresh chances. Across seeds, every
    // outcome must be either the exact ground truth or a clean typed
    // DiskFull — and at least one seed must exercise the recovery loop.
    let spec = JoinSpec::new("road", "hydro", SpatialPredicate::Intersects);
    let config = JoinConfig {
        work_mem_bytes: 64 * 1024,
        ..JoinConfig::default()
    };
    let mut recovered = 0u64;
    let mut enospc_seen = 0u64;
    for seed in 0u64..6 {
        let db = setup_tiger(2, false);
        let truth = ground_truth(&db, "road", "hydro", SpatialPredicate::Intersects);
        db.pool().clear_cache().unwrap();
        db.pool().disk_mut().set_faults(Some(FaultConfig {
            seed,
            enospc_ppm: 30_000,
            ..FaultConfig::default()
        }));
        match pbsm_join(&db, &spec, &config) {
            Ok(out) => {
                assert_eq!(out.pairs, truth, "seed {seed}");
                recovered += out.stats.recovery_retries;
            }
            Err(e) => assert!(e.is_disk_full(), "seed {seed}: expected DiskFull, got {e}"),
        }
        enospc_seen += db.pool().disk().fault_tally().enospc;
    }
    assert!(
        enospc_seen > 0,
        "schedules must actually have injected ENOSPC"
    );
    assert!(
        recovered > 0,
        "at least one seed must succeed only after degradation"
    );
}
